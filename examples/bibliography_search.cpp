// Bibliography scenario: the paper's motivating use case (Sec. I, Example
// 1) on a realistic synthetic DBLP-like corpus. A user looks for
// publications by an author on a topic, misspells both, and XClean
// suggests valid alternatives — and we show the actual matching records.
//
//   $ ./bibliography_search [query...]
//
// Without arguments, a set of demonstration queries (author + topic with
// injected typos) is run.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "xml/writer.h"

namespace {

void RunQuery(xclean::XCleanSuggester& suggester, const std::string& query) {
  std::printf("----------------------------------------------------------\n");
  std::printf("query: \"%s\"\n", query.c_str());
  std::vector<xclean::Suggestion> suggestions = suggester.Suggest(query);
  if (suggestions.empty()) {
    std::printf("  (no suggestion — nothing similar has results)\n");
    return;
  }
  for (size_t i = 0; i < suggestions.size() && i < 3; ++i) {
    const xclean::Suggestion& s = suggestions[i];
    std::printf("  %zu. %-36s  [type %s, %u results]\n", i + 1,
                s.ToString().c_str(),
                suggester.index().tree().PathString(s.result_type).c_str(),
                s.entity_count);
  }

  // Show one actual result entity of the best suggestion: scan its result
  // type's nodes for one containing every suggested keyword.
  const xclean::Suggestion& best = suggestions[0];
  const xclean::XmlTree& tree = suggester.index().tree();
  const xclean::XmlIndex& index = suggester.index();
  uint32_t depth = tree.path_depth(best.result_type);
  std::vector<xclean::TokenId> tokens;
  for (const std::string& w : best.words) {
    tokens.push_back(index.vocabulary().Find(w));
  }
  for (xclean::NodeId n = 0; n < tree.size(); ++n) {
    if (tree.path_id(n) != best.result_type || tree.depth(n) != depth) {
      continue;
    }
    bool all = true;
    for (xclean::TokenId t : tokens) {
      bool found = false;
      for (const xclean::Posting& p : index.postings(t)) {
        if (p.node >= n && p.node <= tree.subtree_end(n)) {
          found = true;
          break;
        }
      }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all) {
      std::printf("  sample result:\n");
      xclean::WriteOptions wo;
      std::string xml = xclean::WriteXml(tree, n, wo);
      for (const std::string& line : xclean::SplitChar(xml, '\n')) {
        if (!line.empty()) std::printf("    %s\n", line.c_str());
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("generating synthetic DBLP-like bibliography...\n");
  xclean::DblpGenOptions gen;
  gen.num_publications = 8000;
  xclean::XCleanSuggester suggester =
      xclean::XCleanSuggester::FromTree(xclean::GenerateDblp(gen));
  const xclean::IndexStats stats = suggester.index().stats();
  std::printf("indexed %llu nodes, vocabulary %llu tokens\n",
              static_cast<unsigned long long>(stats.node_count),
              static_cast<unsigned long long>(stats.vocabulary_size));

  if (argc > 1) {
    std::vector<std::string> words;
    for (int i = 1; i < argc; ++i) words.emplace_back(argv[i]);
    RunQuery(suggester, xclean::Join(words, " "));
    return 0;
  }

  // Demonstration queries in the style of the paper's DBLP workload:
  // sample real (answerable) queries from the corpus the way the
  // evaluation does, then corrupt them with random typos. This guarantees
  // the clean query has results, like a user who knows what they are
  // looking for but mistypes it.
  xclean::WorkloadOptions wo;
  wo.num_queries = 5;
  wo.seed = 2024;
  std::vector<xclean::Query> initial =
      xclean::SampleInitialQueries(suggester.index(), wo);
  xclean::Rng rng(99);
  for (const xclean::Query& clean : initial) {
    xclean::Query dirty =
        xclean::PerturbRand(clean, suggester.index(), wo, rng);
    std::printf("\n(user intends \"%s\")\n", clean.ToString().c_str());
    RunQuery(suggester, dirty.ToString());
  }
  return 0;
}
