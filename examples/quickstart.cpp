// Quickstart: clean a misspelled keyword query against a small inline XML
// document — the paper's running example (Sec. IV, Fig. 2) in ten lines of
// API.
//
//   $ ./quickstart
//
// builds an index over a bibliography fragment, issues the dirty query
// "tree icdt", and prints the ranked alternative queries with their
// inferred result types.

#include <cstdio>

#include "core/suggester.h"

int main() {
  // A document shaped like the paper's Figure 2: conference sessions whose
  // papers mention tree/trie data structures at ICDE/ICDT.
  const char* xml = R"(
    <proceedings>
      <session name="indexing">
        <paper><title>tree indexing methods</title><venue>icde</venue></paper>
        <paper><title>trie compression</title><venue>icde</venue></paper>
      </session>
      <session name="theory">
        <paper><title>trie bounds</title><venue>icdt</venue></paper>
        <paper><title>trees in query engines</title><venue>icde</venue></paper>
      </session>
    </proceedings>
  )";

  xclean::Result<xclean::XCleanSuggester> suggester =
      xclean::XCleanSuggester::FromXmlString(xml);
  if (!suggester.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 suggester.status().ToString().c_str());
    return 1;
  }

  const char* query = "tree icdt";
  std::printf("query: \"%s\"\n\n", query);
  std::printf("Did you mean:\n");
  for (const xclean::Suggestion& s : suggester->Suggest(query)) {
    std::printf("  %-24s (score %.3e, %u matching %s entit%s)\n",
                s.ToString().c_str(), s.score, s.entity_count,
                suggester->index().tree().PathString(s.result_type).c_str(),
                s.entity_count == 1 ? "y" : "ies");
  }
  std::printf(
      "\nEvery suggestion above is guaranteed to have results in the "
      "document\n(the paper's central property).\n");
  return 0;
}
