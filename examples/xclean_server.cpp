// Serving-engine demo: stands up the in-process concurrent engine over a
// generated DBLP-like corpus, accepts a live document (visible to the very
// next suggestion) and compacts the delta stack, replays a misspelled-query
// workload through the bounded queue from several client threads, hot-swaps
// the index mid-run, and prints throughput plus the metrics dump.
//
//   $ ./xclean_server [publications] [clients] [seconds]
//   $ ./xclean_server 20000 4 3
//
// This is the in-process shape of a spelling-suggestion service: one
// immutable index snapshot shared by all workers, an LRU cache in front of
// Algorithm 1, and backpressure instead of unbounded queueing. SIGINT /
// SIGTERM trigger a graceful drain: clients stop submitting, in-flight
// queries finish through ServingEngine::Shutdown(), and the final metrics
// are printed before exit.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_shard_server.h"
#include "serve/engine.h"
#include "shard/coordinator.h"
#include "shard/replica_set.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"

namespace {

using xclean::Query;
using xclean::Rng;
using xclean::Stopwatch;
using xclean::XCleanSuggester;

std::shared_ptr<const XCleanSuggester> BuildCorpus(uint32_t publications,
                                                   uint64_t seed) {
  xclean::DblpGenOptions gen;
  gen.num_publications = publications;
  gen.seed = seed;
  return std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(xclean::GenerateDblp(gen)));
}

std::vector<std::string> BuildWorkload(const XCleanSuggester& suggester,
                                       uint32_t count) {
  xclean::WorkloadOptions options;
  options.num_queries = count;
  std::vector<Query> initial =
      xclean::SampleInitialQueries(suggester.index(), options);
  Rng rng(options.seed);
  std::vector<std::string> queries;
  queries.reserve(initial.size());
  for (const Query& q : initial) {
    queries.push_back(
        xclean::PerturbRand(q, suggester.index(), options, rng).ToString());
  }
  return queries;
}

/// Scatter-gather demo: the same corpus range-partitioned into 4 shards
/// behind a coordinator. One query fans out healthy (exact merge — for
/// gamma = 0 the scores equal an unsharded evaluation's), then a snapshot
/// swap lands on one shard mid-fleet and the repeated query shows the
/// degradation contract: the stale leg is dropped, the answer is served
/// partial and flagged, and no ranking ever mixes two generations.
void DemoScatterGather(uint32_t publications, uint64_t seed,
                       const std::string& query_text) {
  namespace shard = xclean::shard;
  xclean::DblpGenOptions gen;
  gen.num_publications = publications;
  gen.seed = seed;
  const xclean::XmlTree corpus = xclean::GenerateDblp(gen);

  shard::ShardedCorpusOptions options;
  options.num_shards = 4;
  options.xclean.gamma = 0;  // exact scatter-gather merge (DESIGN.md §10)
  xclean::Result<shard::ShardedCorpus> built =
      shard::BuildShardedCorpus(corpus, options);
  if (!built.ok()) {
    std::printf("[shard] unavailable: %s\n",
                built.status().ToString().c_str());
    return;
  }
  const shard::ShardedCorpus& sharded = built.value();

  std::vector<std::unique_ptr<shard::ShardServer>> servers;
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    servers.push_back(std::make_unique<shard::ShardServer>(
        s, sharded.engine, sharded.generation));
    backends.push_back(servers.back().get());
  }
  shard::Coordinator coordinator(backends, sharded.stats, options.xclean,
                                 shard::CoordinatorOptions());

  // Default tokenizer options match the default-built shard indexes.
  const Query query = xclean::ParseQuery(query_text, xclean::Tokenizer());
  shard::CoordinatorResult result =
      coordinator.Suggest(query, sharded.generation);
  std::printf("[shard] \"%s\" over %zu shards ->", query_text.c_str(),
              sharded.num_shards());
  for (size_t j = 0; j < result.suggestions.size() && j < 2; ++j) {
    std::printf("  %s", result.suggestions[j].ToString().c_str());
  }
  std::printf("  (ok=%u%s)\n", result.shards_ok,
              result.truncated ? ", truncated" : ", exact merge");

  // "Yesterday's crawl" lands on shard 2 while the rest of the fleet
  // still serves the old generation.
  servers[2]->PublishGeneration(sharded.generation + 1);
  result = coordinator.Suggest(query, sharded.generation);
  std::printf(
      "[shard] after a swap on shard 2: ok=%u stale=%u truncated=%s — "
      "partial, never mixed-generation\n",
      result.shards_ok, result.shards_stale,
      result.truncated ? "true" : "false");

  // An expired-on-arrival request is refused at admission (no evaluation
  // work) and lands in the dedicated `refused` counter, not in `shed`.
  shard::ShardRequest dead;
  dead.query = query;
  dead.expected_generation = sharded.generation;
  dead.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  (void)servers[0]->Evaluate(dead);
  for (const auto& server : servers) {
    const shard::ShardServerStats stats = server->stats();
    std::printf(
        "[shard] shard %u drops: requests=%llu shed=%llu refused=%llu "
        "truncated=%llu stale_risk=%llu\n",
        server->shard_id(), static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.refused),
        static_cast<unsigned long long>(stats.truncated),
        static_cast<unsigned long long>(stats.stale_risk));
  }
}

/// A transport that is simply gone — connection refused, every time.
class DownBackend : public xclean::shard::ShardBackend {
 public:
  xclean::shard::ShardResponse Evaluate(
      const xclean::shard::ShardRequest&) override {
    xclean::shard::ShardResponse response;
    response.status = xclean::Status::Unavailable("replica transport down");
    return response;
  }
};

/// Replication demo: every shard served by a two-replica set whose primary
/// (index 0 — the router's first pick) is down. Retries route each leg to
/// the healthy sibling, the answer stays exact, and after enough legs the
/// dead primaries' circuit breakers open, so later legs skip them without
/// burning an attempt.
void DemoReplicaFailover(uint32_t publications, uint64_t seed,
                         const std::string& query_text) {
  namespace shard = xclean::shard;
  xclean::DblpGenOptions gen;
  gen.num_publications = publications;
  gen.seed = seed;

  shard::ShardedCorpusOptions options;
  options.num_shards = 4;
  options.xclean.gamma = 0;
  xclean::Result<shard::ShardedCorpus> built =
      shard::BuildShardedCorpus(xclean::GenerateDblp(gen), options);
  if (!built.ok()) {
    std::printf("[replica] unavailable: %s\n",
                built.status().ToString().c_str());
    return;
  }
  const shard::ShardedCorpus& sharded = built.value();

  std::vector<std::unique_ptr<DownBackend>> down;
  std::vector<std::unique_ptr<shard::ShardServer>> healthy;
  std::vector<std::unique_ptr<shard::ReplicaSet>> sets;
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    down.push_back(std::make_unique<DownBackend>());
    healthy.push_back(std::make_unique<shard::ShardServer>(
        s, sharded.engine, sharded.generation));
    sets.push_back(std::make_unique<shard::ReplicaSet>(
        s,
        std::vector<shard::ShardBackend*>{down.back().get(),
                                          healthy.back().get()},
        shard::ReplicaSetOptions()));
    backends.push_back(sets.back().get());
  }
  shard::Coordinator coordinator(backends, sharded.stats, options.xclean,
                                 shard::CoordinatorOptions());

  const Query query = xclean::ParseQuery(query_text, xclean::Tokenizer());
  shard::CoordinatorResult result;
  for (int leg = 0; leg < 6; ++leg) {
    result = coordinator.Suggest(query, sharded.generation);
  }
  const shard::ReplicaSetStats stats = sets[0]->stats();
  std::printf(
      "[replica] dead primary on every shard: ok=%u truncated=%s after "
      "%llu legs (shard 0: attempts=%llu retries=%llu, primary breaker %s "
      "after %llu failures)\n",
      result.shards_ok, result.truncated ? "true" : "false",
      static_cast<unsigned long long>(stats.legs),
      static_cast<unsigned long long>(stats.attempts),
      static_cast<unsigned long long>(stats.retries),
      stats.replicas[0].breaker_state == shard::BreakerState::kOpen
          ? "open"
          : "closed",
      static_cast<unsigned long long>(stats.replicas[0].transport_errors));
}

/// Wire-transport demo: the replicated scatter-gather fleet with every
/// replica behind a real loopback socket — RpcShardServer front ends,
/// RpcShardBackend clients, ReplicaSet and Coordinator stacked on top
/// unchanged. Mid-workload one replica's socket server is shut down; its
/// legs surface as transport errors (reset connections, refused dials),
/// the ReplicaSet fails over to the sibling's socket, and the merged
/// answer never changes.
void DemoRpcServing(uint32_t publications, uint64_t seed,
                    const std::string& query_text) {
  namespace shard = xclean::shard;
  xclean::DblpGenOptions gen;
  gen.num_publications = publications;
  gen.seed = seed;

  shard::ShardedCorpusOptions options;
  options.num_shards = 2;
  options.xclean.gamma = 0;
  xclean::Result<shard::ShardedCorpus> built =
      shard::BuildShardedCorpus(xclean::GenerateDblp(gen), options);
  if (!built.ok()) {
    std::printf("[rpc]   unavailable: %s\n",
                built.status().ToString().c_str());
    return;
  }
  const shard::ShardedCorpus& sharded = built.value();

  // Two replicas per shard, each a ShardServer fronted by its own socket
  // server; the ReplicaSet races RpcShardBackend clients, not locals.
  std::vector<std::unique_ptr<shard::ShardServer>> locals;
  std::vector<std::unique_ptr<xclean::rpc::RpcShardServer>> sockets;
  std::vector<std::unique_ptr<xclean::rpc::RpcShardBackend>> clients;
  std::vector<std::unique_ptr<shard::ReplicaSet>> sets;
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    std::vector<shard::ShardBackend*> replicas;
    for (int r = 0; r < 2; ++r) {
      locals.push_back(std::make_unique<shard::ShardServer>(
          s, sharded.engine, sharded.generation));
      xclean::rpc::RpcServerOptions sopts;
      sopts.shard_id = s;
      sockets.push_back(std::make_unique<xclean::rpc::RpcShardServer>(
          locals.back().get(), sopts));
      const xclean::Status started = sockets.back()->Start();
      if (!started.ok()) {
        std::printf("[rpc]   listen failed: %s\n",
                    started.ToString().c_str());
        return;
      }
      clients.push_back(std::make_unique<xclean::rpc::RpcShardBackend>(
          sockets.back()->port(), s));
      replicas.push_back(clients.back().get());
    }
    sets.push_back(std::make_unique<shard::ReplicaSet>(
        s, replicas, shard::ReplicaSetOptions()));
    backends.push_back(sets.back().get());
  }
  shard::Coordinator coordinator(backends, sharded.stats, options.xclean,
                                 shard::CoordinatorOptions());
  std::printf("[rpc]   %zu shards x 2 replicas on 127.0.0.1 ports",
              sharded.num_shards());
  for (const auto& server : sockets) std::printf(" %u", server->port());
  std::printf("\n");

  const Query query = xclean::ParseQuery(query_text, xclean::Tokenizer());
  const shard::CoordinatorResult wired =
      coordinator.Suggest(query, sharded.generation);
  std::printf("[rpc]   \"%s\" over the wire ->", query_text.c_str());
  for (size_t j = 0; j < wired.suggestions.size() && j < 2; ++j) {
    std::printf("  %s", wired.suggestions[j].ToString().c_str());
  }
  std::printf("  (ok=%u%s)\n", wired.shards_ok,
              wired.truncated ? ", truncated" : ", exact merge");
  if (!wired.status.ok()) return;

  // Shard 0's first replica dies mid-workload — socket server gone, its
  // pooled connections reset, fresh dials refused. Every answer before,
  // during and after must match the healthy one.
  constexpr int kLegs = 6;
  int exact = 0;
  for (int leg = 0; leg < kLegs; ++leg) {
    if (leg == kLegs / 2) sockets[0]->Shutdown();
    const shard::CoordinatorResult result =
        coordinator.Suggest(query, sharded.generation);
    const bool top_matches =
        result.suggestions.empty()
            ? wired.suggestions.empty()
            : !wired.suggestions.empty() &&
                  result.suggestions[0].words == wired.suggestions[0].words;
    if (result.status.ok() && !result.truncated && top_matches) ++exact;
  }
  const xclean::rpc::RpcClientStats dead = clients[0]->stats();
  std::printf(
      "[rpc]   killed shard 0 replica 0 mid-workload: %d/%d answers exact "
      "(dead socket: dial_failures=%llu evicted=%llu — failover to the "
      "sibling's socket, invisible in the merge)\n",
      exact, kLegs, static_cast<unsigned long long>(dead.dial_failures),
      static_cast<unsigned long long>(dead.connections_evicted));
}

/// Set by the SIGINT/SIGTERM handler. sig_atomic_t + volatile is the only
/// state a signal handler may touch portably; everything else (stopping
/// clients, draining the engine) happens on the main thread when it
/// notices the flag.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void HandleShutdownSignal(int signal) { g_shutdown_signal = signal; }

/// Sleeps up to `seconds`, returning early (false) when a shutdown signal
/// arrives. Polls in small increments: signal handlers cannot wake a
/// sleeping thread portably, and 20ms of shutdown latency is invisible.
bool SleepUnlessSignalled(double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (g_shutdown_signal != 0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return g_shutdown_signal == 0;
}

}  // namespace

int main(int argc, char** argv) {
  long publications = argc > 1 ? std::atol(argv[1]) : 20000;
  long clients = argc > 2 ? std::atol(argv[2]) : 4;
  double seconds = argc > 3 ? std::atof(argv[3]) : 3.0;
  if (publications < 100 || clients < 1 || clients > 256 ||
      seconds <= 0.0) {
    std::fprintf(stderr,
                 "usage: %s [publications >= 100] [clients 1..256] "
                 "[seconds > 0]\n",
                 argv[0]);
    return 1;
  }

  uint32_t num_pubs = static_cast<uint32_t>(publications);
  size_t num_clients = static_cast<size_t>(clients);

  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);

  std::printf("[build] generating + indexing %u publications...\n", num_pubs);
  Stopwatch build_watch;
  std::shared_ptr<const XCleanSuggester> index = BuildCorpus(num_pubs, 42);
  std::vector<std::string> queries = BuildWorkload(*index, 200);
  std::printf("[build] done in %.1fs (%zu misspelled queries)\n",
              build_watch.ElapsedSeconds(), queries.size());

  xclean::serve::EngineOptions options;
  options.pool.num_threads = num_clients;
  options.pool.queue_capacity = 4096;
  options.cache.capacity = 8192;
  options.default_deadline = std::chrono::milliseconds(250);
  xclean::serve::ServingEngine engine(index, options);

  std::printf("[serve] %zu workers, queue=%zu, cache=%zu, deadline=250ms\n",
              engine.num_threads(), options.pool.queue_capacity,
              options.cache.capacity);

  // Show a few suggestions up front so the output is self-explanatory.
  for (size_t i = 0; i < queries.size() && i < 3; ++i) {
    xclean::serve::ServeResult r = engine.Suggest(queries[i]);
    std::printf("[demo]  \"%s\" ->", queries[i].c_str());
    for (size_t j = 0; j < r.suggestions.size() && j < 2; ++j) {
      std::printf("  %s", r.suggestions[j].ToString().c_str());
    }
    std::printf("\n");
  }

  // Incremental indexing: accept a live document, watch the very next
  // suggestion see it (no rebuild, no flush), then compact the delta
  // stack into a single generation. The mid-run SwapIndex below detaches
  // the live stack again — swap and live updates compose.
  xclean::Status live_status = engine.EnableLiveUpdates();
  if (live_status.ok()) {
    xclean::Result<xclean::delta::DocId> doc = engine.AddDocument(
        "<article><title>zyzzyva spelling handbook</title>"
        "<year>2026</year></article>");
    if (doc.ok()) {
      xclean::serve::ServeResult r = engine.Suggest("zyzzyvb handbok");
      std::printf("[live]  added doc %llu; \"zyzzyvb handbok\" ->",
                  static_cast<unsigned long long>(doc.value()));
      for (size_t j = 0; j < r.suggestions.size() && j < 2; ++j) {
        std::printf("  %s", r.suggestions[j].ToString().c_str());
      }
      std::printf("\n");
      xclean::Result<uint64_t> gen = engine.CompactLive();
      xclean::serve::MetricsSnapshot lm = engine.Metrics();
      std::printf("[live]  compacted %llu layer(s) in %.2fms\n",
                  static_cast<unsigned long long>(lm.delta_layers),
                  lm.last_compact_ms);
      if (!gen.ok()) {
        std::printf("[live]  compact failed: %s\n",
                    gen.status().ToString().c_str());
      }
    }
  } else {
    std::printf("[live]  live updates unavailable: %s\n",
                live_status.ToString().c_str());
  }

  // Scatter-gather topology on a small slice of the corpus: healthy
  // exact merge, then per-shard degradation after a mid-fleet swap.
  DemoScatterGather(std::min<uint32_t>(num_pubs, 2000), 42, queries[0]);

  // Replication: dead primaries everywhere, exact answers anyway.
  DemoReplicaFailover(std::min<uint32_t>(num_pubs, 2000), 42, queries[0]);

  // The same replicated fleet over real loopback sockets: wire framing,
  // pooled connections, and a mid-workload replica kill that failover
  // absorbs without changing a single answer.
  DemoRpcServing(std::min<uint32_t>(num_pubs, 2000), 42, queries[0]);

  // Closed-loop clients driving the engine through the bounded queue.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  Stopwatch run_watch;
  for (size_t t = 0; t < num_clients; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        std::atomic<bool> ready{false};
        xclean::Status s = engine.SubmitSuggest(
            queries[(t * 131 + i) % queries.size()],
            [&ready, &served, &shed](xclean::serve::ServeResult r) {
              if (r.status.ok()) {
                served.fetch_add(1, std::memory_order_relaxed);
              } else {
                shed.fetch_add(1, std::memory_order_relaxed);
              }
              ready.store(true, std::memory_order_release);
            });
        if (!s.ok()) {  // queue full: back off
          std::this_thread::yield();
          continue;
        }
        while (!ready.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Mid-run, rebuild the corpus (fresh seed — "yesterday's crawl") and
  // hot-swap it in; in-flight queries finish on the old snapshot. A
  // shutdown signal skips straight to the drain.
  if (SleepUnlessSignalled(seconds * 0.5)) {
    std::printf("[swap]  rebuilding index...\n");
    std::shared_ptr<const XCleanSuggester> rebuilt =
        BuildCorpus(num_pubs, 43);
    engine.SwapIndex(rebuilt);
    std::printf("[swap]  snapshot v%llu live (old snapshot drains)\n",
                static_cast<unsigned long long>(engine.snapshot_version()));
    SleepUnlessSignalled(seconds * 0.5);
  }

  // Graceful drain, signalled or not: stop the clients first so nothing
  // new enters the queue, then let Shutdown() finish every query already
  // accepted. The metrics always print — an operator killing the service
  // still gets its final counters.
  if (g_shutdown_signal != 0) {
    std::printf("[drain] caught signal %d, draining in-flight queries...\n",
                static_cast<int>(g_shutdown_signal));
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  engine.Shutdown();
  double elapsed = run_watch.ElapsedSeconds();

  xclean::serve::MetricsSnapshot m = engine.Metrics();
  std::printf("[done]  %.0f qps over %.1fs (%llu served, %llu shed)\n",
              static_cast<double>(served.load()) / elapsed, elapsed,
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(shed.load()));
  std::printf("[stats] %s\n", m.ToString().c_str());
  return 0;
}
