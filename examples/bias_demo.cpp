// Figure 1 of the paper, executable: why heuristic TF/IDF scoring (PY08)
// corrects "health insurrance" to "health instance" while XClean's
// result-quality scoring picks "health insurance".
//
//   $ ./bias_demo

#include <cstdio>
#include <string>

#include "core/py08.h"
#include "core/xclean.h"
#include "xml/parser.h"

int main() {
  // A miniature insurance database: many records about health insurance,
  // one stray technical note containing the rare word "instance".
  std::string xml = "<db>";
  for (int i = 0; i < 40; ++i) {
    xml +=
        "<record><text>health insurance policy coverage claims</text>"
        "</record>";
  }
  xml += "<record><text>instance</text></record>";
  for (int i = 0; i < 12; ++i) {
    xml += "<record><text>office processing paperwork</text></record>";
  }
  xml += "</db>";

  xclean::Result<xclean::XmlTree> tree = xclean::ParseXmlString(xml);
  if (!tree.ok()) return 1;
  xclean::IndexOptions index_options;
  index_options.fastss_max_ed = 3;  // "insurrance" -> "instance" is ed 3
  auto index =
      xclean::XmlIndex::Build(std::move(tree).value(), index_options);

  xclean::Query query;
  query.keywords = {"health", "insurrance"};
  std::printf("dirty query: \"health insurrance\"\n\n");

  // PY08: max-TF/IDF per keyword, no connectivity check.
  xclean::Py08Options py_options;
  py_options.max_ed = 3;
  xclean::Py08Cleaner py08(*index, py_options);
  std::printf("PY08 suggests:\n");
  for (const xclean::Suggestion& s : py08.Suggest(query)) {
    std::printf("  %-22s score=%.3f  (results checked: no)\n",
                s.ToString().c_str(), s.score);
  }
  xclean::TokenId instance = index->vocabulary().Find("instance");
  xclean::TokenId insurance = index->vocabulary().Find("insurance");
  std::printf(
      "\n  why: score_IR(instance) = %.3f (df=1, whole element)\n"
      "       score_IR(insurance) = %.3f (df=%u, 1/5 of its element)\n"
      "  the rare token wins on idf — the bias of Sec. II.\n\n",
      py08.ScoreIr(instance), py08.ScoreIr(insurance),
      index->doc_freq(insurance));

  // XClean: candidates scored by the quality of their results.
  xclean::XCleanOptions x_options;
  x_options.max_ed = 3;
  x_options.gamma = 0;
  xclean::XClean xclean_cleaner(*index, x_options);
  std::printf("XClean suggests:\n");
  for (const xclean::Suggestion& s : xclean_cleaner.Suggest(query)) {
    std::printf("  %-22s score=%.3e  (%u entities contain both words)\n",
                s.ToString().c_str(), s.score, s.entity_count);
  }
  std::printf(
      "\n  \"health instance\" never co-occurs in any record, so XClean\n"
      "  never suggests it: suggested queries always have results.\n");
  return 0;
}
