// Exercises the fault-injection registry (common/fault_injection.h) and
// the recovery behaviour it exists to prove: injected snapshot-load
// failures are retried, quarantined when persistent, and never take down
// the serving snapshot. Registered under the `fault-injection` ctest
// label so the sanitizer CI jobs run it explicitly.
//
// Every test skips itself when the library was built with
// -DXCLEAN_FAULT_INJECTION=OFF (the release configuration compiles the
// points out entirely).

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "index/index_io.h"
#include "serve/engine.h"

namespace xclean {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }
};

std::shared_ptr<const XCleanSuggester> BuildSuggester(uint64_t seed = 7) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  gen.seed = seed;
  return std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
}

std::string WriteSnapshot(const XCleanSuggester& suggester,
                          const std::string& name) {
  std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(SaveIndex(suggester.index(), path).ok());
  return path;
}

TEST_F(FaultInjectionTest, ArmStatusFiresForLimitedHits) {
  fault::ArmStatus("index_io.load", Status::ParseError("injected"), 2);
  EXPECT_FALSE(LoadIndex("/tmp/never-opened.idx").ok());
  EXPECT_FALSE(LoadIndex("/tmp/never-opened.idx").ok());
  EXPECT_EQ(fault::HitCount("index_io.load"), 2u);
  // Third hit: the arm is exhausted, the real code path runs (NotFound
  // because the file does not exist — not the injected ParseError).
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex("/tmp/never-opened.idx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(FaultInjectionTest, DisarmKeepsCountDisarmAllZeroes) {
  fault::ArmStatus("index_io.load", Status::ParseError("injected"));
  (void)LoadIndex("/tmp/never-opened.idx");
  fault::Disarm("index_io.load");
  EXPECT_EQ(fault::HitCount("index_io.load"), 1u);
  // Disarmed: the point is pass-through again.
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex("/tmp/never-opened.idx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  fault::DisarmAll();
  EXPECT_EQ(fault::HitCount("index_io.load"), 0u);
}

TEST_F(FaultInjectionTest, CallbackFiresInsideTheCoreAnchorLoop) {
  auto suggester = BuildSuggester();
  std::atomic<int> anchor_hits{0};
  fault::ArmCallback("xclean.anchor", [&] { anchor_hits.fetch_add(1); });
  (void)suggester->Suggest("algoritm retrieval");
  EXPECT_GT(anchor_hits.load(), 0);
  EXPECT_EQ(fault::HitCount("xclean.anchor"),
            static_cast<uint64_t>(anchor_hits.load()));
}

TEST_F(FaultInjectionTest, WorkerDispatchAndCacheLookupPointsAreHit) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  serve::ServingEngine engine(BuildSuggester(), options);

  fault::ArmCallback("serve.cache.lookup", [] {});
  (void)engine.Suggest("information retrieval");
  EXPECT_EQ(fault::HitCount("serve.cache.lookup"), 1u);

  fault::ArmCallback("thread_pool.run", [] {});
  std::atomic<int> done{0};
  ASSERT_TRUE(engine
                  .SubmitSuggest("database systems",
                                 [&](serve::ServeResult) { done.fetch_add(1); })
                  .ok());
  engine.Shutdown();
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(fault::HitCount("thread_pool.run"), 1u);
}

TEST_F(FaultInjectionTest, TransientLoadFailureIsRetriedAndRecovers) {
  auto initial = BuildSuggester(1);
  auto next = BuildSuggester(2);
  std::string path = WriteSnapshot(*next, "fault_transient.idx");

  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.swap_load_attempts = 3;
  options.swap_retry_backoff = std::chrono::milliseconds(1);
  serve::ServingEngine engine(initial, options);

  // Fail exactly once: the first attempt eats the injected error, the
  // retry succeeds — the torn-write-caught-mid-publish scenario.
  fault::ArmStatus("index_io.load", Status::ParseError("injected torn read"),
                   1);
  EXPECT_TRUE(engine.SwapIndexFromFile(path).ok());
  EXPECT_EQ(fault::HitCount("index_io.load"), 1u);
  EXPECT_EQ(engine.snapshot_version(), 2u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, PersistentLoadFailureQuarantinesTheFile) {
  auto initial = BuildSuggester(1);
  auto next = BuildSuggester(2);
  std::string path = WriteSnapshot(*next, "fault_quarantine.idx");

  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.swap_load_attempts = 2;
  options.swap_retry_backoff = std::chrono::milliseconds(1);
  serve::ServingEngine engine(initial, options);

  fault::ArmStatus("index_io.load", Status::ParseError("injected corrupt"));
  Status failed = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kParseError);
  // Every configured attempt was spent on the file before giving up.
  EXPECT_EQ(fault::HitCount("index_io.load"), 2u);
  // The old snapshot is untouched and still serving.
  EXPECT_EQ(engine.snapshot_version(), 1u);
  EXPECT_TRUE(engine.Suggest("information retrieval").status.ok());

  // Second call fails fast from quarantine: the file is not re-read (the
  // injection point's hit count does not move).
  Status quarantined = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(quarantined.ok());
  EXPECT_EQ(quarantined.code(), StatusCode::kUnavailable);
  EXPECT_NE(quarantined.message().find("quarantine"), std::string::npos);
  EXPECT_EQ(fault::HitCount("index_io.load"), 2u);

  // Quarantine identity is the file's *content* checksum. Re-saving the
  // identical index reproduces identical bytes (serialization is
  // byte-stable), so the quarantine stays in force even with the fault
  // disarmed — same bytes, same verdict, no wasted re-parse.
  fault::DisarmAll();
  EXPECT_TRUE(SaveIndex(next->index(), path).ok());
  Status same_bytes = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(same_bytes.ok());
  EXPECT_EQ(same_bytes.code(), StatusCode::kUnavailable);

  // Republishing *different* content clears it and the swap goes through.
  auto fixed = BuildSuggester(3);
  EXPECT_TRUE(SaveIndex(fixed->index(), path).ok());
  EXPECT_TRUE(engine.SwapIndexFromFile(path).ok());
  EXPECT_EQ(engine.snapshot_version(), 2u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, MissingFileIsNotRetriedOrQuarantined) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.swap_load_attempts = 3;
  serve::ServingEngine engine(BuildSuggester(), options);

  std::string path = testing::TempDir() + "/fault_missing.idx";
  Status s = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // Publishing the file afterwards must work on the first try — a missing
  // file is an operator race, not a corruption, and must never stick.
  auto next = BuildSuggester(2);
  ASSERT_TRUE(SaveIndex(next->index(), path).ok());
  EXPECT_TRUE(engine.SwapIndexFromFile(path).ok());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ArmDelayStallsTheArmedPoint) {
  fault::ArmDelay("index_io.load", std::chrono::milliseconds(20), 1);
  auto start = std::chrono::steady_clock::now();
  (void)LoadIndex("/tmp/never-opened.idx");
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
}

}  // namespace
}  // namespace xclean
