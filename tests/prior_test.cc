#include "core/prior.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/xclean.h"
#include "xml/parser.h"

namespace xclean {
namespace {

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

/// Two ambiguous corrections: "tree index" answered in section s1, "trees
/// index" answered in section s2. Without a prior they rank by statistics;
/// a log full of queries about s1's content flips/locks the ranking.
std::unique_ptr<XmlIndex> BuildSample() {
  return XmlIndex::Build(std::move(
      ParseXmlString(
          "<root>"
          "<s1><p>tree index structure</p><p>tree index</p></s1>"
          "<s2><p>trees index layout</p><p>trees index</p></s2>"
          "</root>")
          .value()));
}

TEST(LogEntityPriorTest, WeightsReflectLoggedPopularity) {
  auto index = BuildSample();
  LogEntityPrior prior(*index, 1.0);
  prior.AddQuery(Q({"tree", "structure"}), 50);
  prior.Finalize();
  const XmlTree& t = index->tree();
  NodeId s1 = t.FindByDewey(DeweyFromString("1.1"));
  NodeId s2 = t.FindByDewey(DeweyFromString("1.2"));
  EXPECT_GT(prior.weight(s1), prior.weight(s2));
  EXPECT_DOUBLE_EQ(prior.weight(s2), 1.0);  // floor only
  // Root aggregates everything under it.
  EXPECT_GE(prior.weight(t.root()), prior.weight(s1));
}

TEST(LogEntityPriorTest, UnknownWordsIgnored) {
  auto index = BuildSample();
  LogEntityPrior prior(*index, 1.0);
  prior.AddQuery(Q({"zzzzz"}), 100);
  prior.AddQuery(Q({}), 100);
  prior.Finalize();
  EXPECT_EQ(prior.logged_queries(), 0u);
  for (NodeId n = 0; n < index->tree().size(); ++n) {
    EXPECT_DOUBLE_EQ(prior.weight(n), 1.0);
  }
}

TEST(LogEntityPriorTest, PopularityShiftsSuggestionRanking) {
  auto index = BuildSample();

  // Query "tree index": the exact reading answers in s1, the distance-1
  // variant "trees index" answers in s2.
  XCleanOptions base;
  base.max_ed = 1;
  base.gamma = 0;

  // Strong log interest in s2's content.
  LogEntityPrior prior(*index, 1.0);
  prior.AddQuery(Q({"trees", "layout"}), 1000);
  prior.Finalize();
  XCleanOptions with_prior = base;
  with_prior.entity_prior = prior.AsFunction();

  XClean plain(*index, base);
  XClean boosted(*index, with_prior);
  Query dirty = Q({"tree", "index"});

  auto find_rank = [](const std::vector<Suggestion>& s,
                      const std::vector<std::string>& words) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i].words == words) return i + 1;
    }
    return size_t{0};
  };
  auto sp = plain.Suggest(dirty);
  auto sb = boosted.Suggest(dirty);
  size_t plain_rank = find_rank(sp, {"trees", "index"});
  size_t boosted_rank = find_rank(sb, {"trees", "index"});
  ASSERT_NE(plain_rank, 0u);
  ASSERT_NE(boosted_rank, 0u);
  EXPECT_LE(boosted_rank, plain_rank);
  EXPECT_EQ(boosted_rank, 1u);  // the log makes s2's reading win
}

TEST(XCleanThreadSafetyTest, ConcurrentSuggestIsDeterministic) {
  auto index = BuildSample();
  XCleanOptions options;
  options.max_ed = 1;
  options.gamma = 0;
  const XClean cleaner(*index, options);

  Query dirty = Q({"tree", "index"});
  XCleanRunStats reference_stats;
  std::vector<Suggestion> reference =
      cleaner.SuggestWithStats(dirty, &reference_stats);
  ASSERT_FALSE(reference.empty());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool all_match = true;
      for (int round = 0; round < kRounds; ++round) {
        XCleanRunStats stats;
        std::vector<Suggestion> got = cleaner.SuggestWithStats(dirty, &stats);
        if (got.size() != reference.size()) {
          all_match = false;
          break;
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].words != reference[i].words ||
              got[i].score != reference[i].score) {
            all_match = false;
          }
        }
        if (stats.subtrees_processed != reference_stats.subtrees_processed) {
          all_match = false;
        }
      }
      ok[t] = all_match;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;
}

}  // namespace
}  // namespace xclean
