#include "lm/error_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xclean {
namespace {

TEST(ErrorModelTest, ExactMatchHasWeightOne) {
  ErrorModel model(5.0);
  EXPECT_DOUBLE_EQ(model.Weight(0u), 1.0);
  EXPECT_DOUBLE_EQ(model.Weight("tree", "tree"), 1.0);
}

TEST(ErrorModelTest, ExponentialDecay) {
  ErrorModel model(5.0);
  EXPECT_NEAR(model.Weight(1u), std::exp(-5.0), 1e-15);
  EXPECT_NEAR(model.Weight(2u), std::exp(-10.0), 1e-15);
  // Each extra edit multiplies by the same factor.
  EXPECT_NEAR(model.Weight(2u) / model.Weight(1u),
              model.Weight(1u) / model.Weight(0u), 1e-15);
}

TEST(ErrorModelTest, ComputesEditDistance) {
  ErrorModel model(2.0);
  EXPECT_NEAR(model.Weight("tree", "trie"), std::exp(-2.0), 1e-15);
  EXPECT_NEAR(model.Weight("kitten", "sitting"), std::exp(-6.0), 1e-15);
}

TEST(ErrorModelTest, BetaZeroIsIndifferent) {
  ErrorModel model(0.0);
  EXPECT_DOUBLE_EQ(model.Weight(0u), 1.0);
  EXPECT_DOUBLE_EQ(model.Weight(3u), 1.0);
}

TEST(ErrorModelTest, QueryWeightIsProductOfSlots) {
  ErrorModel model(5.0);
  EXPECT_NEAR(model.QueryWeight({1, 0, 2}),
              model.Weight(1u) * model.Weight(0u) * model.Weight(2u), 1e-20);
  EXPECT_DOUBLE_EQ(model.QueryWeight({}), 1.0);
}

TEST(ErrorModelTest, LargerBetaPenalizesMore) {
  ErrorModel soft(1.0), hard(10.0);
  EXPECT_GT(soft.Weight(1u), hard.Weight(1u));
}

/// The per-slot normalizers of Eqs. (4)-(5) are constant within a slot, so
/// dropping them never changes the ranking of two candidates that differ
/// only in this slot's variant: ranking depends only on the weight ratio,
/// which the unnormalized form preserves.
TEST(ErrorModelTest, NormalizationIsRankInvariant) {
  ErrorModel model(5.0);
  double w1 = model.Weight(1u), w2 = model.Weight(2u);
  for (double z : {0.1, 1.0, 42.0}) {
    EXPECT_EQ(w1 / z > w2 / z, w1 > w2);
  }
}

}  // namespace
}  // namespace xclean
