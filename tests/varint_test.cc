#include "common/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace xclean {
namespace {

TEST(VarintTest, RoundTrips64) {
  const std::vector<uint64_t> values = {
      0,       1,
      127,     128,
      300,     16383,
      16384,   (1ull << 32) - 1,
      1ull << 32,             (1ull << 56) + 17,
      std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(buf, v);
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  for (uint64_t want : values) {
    uint64_t got = 0;
    p = GetVarint64(p, end, &got);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(p, end);
}

TEST(VarintTest, EncodingLengthMatchesMagnitude) {
  std::string one, two, ten;
  PutVarint64(one, 127);
  PutVarint64(two, 128);
  PutVarint64(ten, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(VarintTest, TruncatedDecodeFails) {
  std::string buf;
  PutVarint64(buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    uint64_t v = 0;
    EXPECT_EQ(GetVarint64(buf.data(), buf.data() + cut, &v), nullptr)
        << "cut at " << cut;
  }
}

TEST(VarintTest, Get32RejectsWideValues) {
  std::string buf;
  PutVarint64(buf, 1ull << 32);
  uint32_t v = 0;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + buf.size(), &v), nullptr);
}

TEST(VarintTest, ZigZagRoundTripsSignedDeltas) {
  const std::vector<int64_t> values = {
      0, -1, 1, -2, 2, 63, -64, 1000000, -1000000,
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes of either sign must stay one byte.
  std::string buf;
  PutVarint64(buf, ZigZagEncode(-5));
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
}  // namespace xclean
