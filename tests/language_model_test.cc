#include "lm/language_model.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xclean {
namespace {

std::unique_ptr<XmlIndex> BuildSample() {
  return XmlIndex::Build(std::move(
      ParseXmlString(
          "<a><c><x>tree</x><x>trie icde</x></c>"
          "<d><x>trie</x><x>icde icdt icde</x></d></a>")
          .value()));
}

TEST(LanguageModelTest, DirichletFormula) {
  auto index = BuildSample();
  LanguageModel lm(*index, 2000.0);
  TokenId icde = index->vocabulary().Find("icde");
  // P(icde|B) = 3/7.
  EXPECT_NEAR(lm.Background(icde), 3.0 / 7.0, 1e-12);
  // Entity d (node 4): count(icde, D) = 2, |D| = 4.
  double expected = (2.0 + 2000.0 * (3.0 / 7.0)) / (4.0 + 2000.0);
  EXPECT_NEAR(lm.ProbInEntity(icde, 2, 4), expected, 1e-12);
  EXPECT_NEAR(lm.Prob(icde, 2, 4), expected, 1e-12);
}

TEST(LanguageModelTest, SmoothingGivesUnseenTokensMass) {
  auto index = BuildSample();
  LanguageModel lm(*index, 2000.0);
  TokenId tree = index->vocabulary().Find("tree");
  // tree never occurs in entity d, yet its probability is positive.
  double p = lm.ProbInEntity(tree, 0, 4);
  EXPECT_GT(p, 0.0);
  EXPECT_NEAR(p, 2000.0 * (1.0 / 7.0) / 2004.0, 1e-12);
}

TEST(LanguageModelTest, ProbabilitiesSumToOneOverVocabulary) {
  auto index = BuildSample();
  LanguageModel lm(*index, 500.0);
  // For any entity, sum over all vocab tokens of P(w|D) = 1 when counts are
  // the true entity counts (Dirichlet smoothing is a proper distribution).
  const XmlTree& t = index->tree();
  for (NodeId entity : {NodeId{1}, NodeId{4}, NodeId{0}}) {
    double sum = 0.0;
    for (TokenId w = 0; w < index->vocabulary().size(); ++w) {
      // True count of w in the entity subtree via postings.
      uint64_t count = 0;
      for (const Posting& p : index->postings(w)) {
        if (p.node >= entity && p.node <= t.subtree_end(entity)) {
          count += p.tf;
        }
      }
      sum += lm.ProbInEntity(w, count, entity);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "entity " << entity;
  }
}

TEST(LanguageModelTest, MoreOccurrencesMoreProbable) {
  auto index = BuildSample();
  LanguageModel lm(*index, 2000.0);
  TokenId icde = index->vocabulary().Find("icde");
  EXPECT_GT(lm.Prob(icde, 3, 10), lm.Prob(icde, 1, 10));
}

TEST(LanguageModelTest, SmallerMuTrustsEntityMore) {
  auto index = BuildSample();
  LanguageModel strong_prior(*index, 10000.0);
  LanguageModel weak_prior(*index, 10.0);
  TokenId icdt = index->vocabulary().Find("icdt");  // rare in background
  // An entity where icdt is dense: weak prior yields higher probability.
  EXPECT_GT(weak_prior.Prob(icdt, 3, 4), strong_prior.Prob(icdt, 3, 4));
}

}  // namespace
}  // namespace xclean
