#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/random.h"
#include "core/elca.h"
#include "core/slca.h"
#include "index/shard_manifest.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"
#include "xml/dewey.h"
#include "xml/tree.h"

namespace xclean::shard {
namespace {

using shardtest::RandomCorpusTree;
using shardtest::ShardBaseSeed;

/// Property: PartitionByWeight tiles the document space — every ordinal in
/// exactly one range, ranges contiguous in shard order, boundaries
/// deterministic.
TEST(ShardPartitionTest, RangesTileDocumentSpace) {
  const uint64_t base = ShardBaseSeed();
  for (uint64_t round = 0; round < 50; ++round) {
    Rng rng(base + round);
    const size_t num_docs = rng.Uniform(40);  // includes 0
    const size_t num_shards = 1 + rng.Uniform(8);
    std::vector<uint64_t> weights;
    for (size_t i = 0; i < num_docs; ++i) {
      // Heavy-tailed weights: occasional giant documents stress the
      // boundary rounding.
      weights.push_back(rng.Bernoulli(0.1) ? 1 + rng.Uniform(1000)
                                           : 1 + rng.Uniform(20));
    }
    SCOPED_TRACE("seed " + std::to_string(base + round) + " docs " +
                 std::to_string(num_docs) + " shards " +
                 std::to_string(num_shards));

    const std::vector<ShardRange> ranges =
        PartitionByWeight(weights, num_shards);
    ASSERT_EQ(ranges.size(), num_shards);
    EXPECT_EQ(ranges.front().doc_begin, 0u);
    EXPECT_EQ(ranges.back().doc_end, num_docs);
    for (size_t s = 0; s < num_shards; ++s) {
      EXPECT_LE(ranges[s].doc_begin, ranges[s].doc_end);
      if (s > 0) EXPECT_EQ(ranges[s].doc_begin, ranges[s - 1].doc_end);
    }
    for (uint32_t doc = 0; doc < num_docs; ++doc) {
      size_t owners = 0;
      for (const ShardRange& r : ranges) owners += r.Contains(doc);
      EXPECT_EQ(owners, 1u) << "doc " << doc;
      EXPECT_NE(ShardForDocument(ranges, doc), UINT32_MAX);
    }
    EXPECT_EQ(ShardForDocument(ranges, static_cast<uint32_t>(num_docs)),
              UINT32_MAX);
    // Determinism: the partition is a pure function of its inputs.
    EXPECT_TRUE(std::equal(ranges.begin(), ranges.end(),
                           PartitionByWeight(weights, num_shards).begin(),
                           [](const ShardRange& a, const ShardRange& b) {
                             return a.doc_begin == b.doc_begin &&
                                    a.doc_end == b.doc_end;
                           }));
  }
}

/// Weight balance: no shard exceeds the ideal share by more than one
/// document's weight (the granularity limit of contiguous partitioning).
TEST(ShardPartitionTest, BalancedWithinOneDocumentGranularity) {
  const uint64_t base = ShardBaseSeed();
  for (uint64_t round = 0; round < 20; ++round) {
    Rng rng(base + 1000 + round);
    const size_t num_docs = 10 + rng.Uniform(60);
    const size_t num_shards = 2 + rng.Uniform(6);
    std::vector<uint64_t> weights;
    uint64_t total = 0, max_w = 0;
    for (size_t i = 0; i < num_docs; ++i) {
      weights.push_back(1 + rng.Uniform(30));
      total += weights.back();
      max_w = std::max(max_w, weights.back());
    }
    const std::vector<ShardRange> ranges =
        PartitionByWeight(weights, num_shards);
    const double ideal = static_cast<double>(total) / num_shards;
    for (size_t s = 0; s < num_shards; ++s) {
      uint64_t w = 0;
      for (uint32_t d = ranges[s].doc_begin; d < ranges[s].doc_end; ++d) {
        w += weights[d];
      }
      EXPECT_LE(w, ideal + max_w)
          << "shard " << s << " seed " << (base + 1000 + round);
    }
  }
}

/// The Dewey-boundary property the range partition rests on: a document's
/// ordinal is its Dewey code's second component minus one, so a contiguous
/// ordinal range is a contiguous Dewey range, and the string round-trip
/// (DeweyString -> DeweyFromString -> FindByDewey) is the identity at and
/// around every partition boundary.
TEST(ShardPartitionTest, DeweyBoundaryMathMatchesOrdinals) {
  const uint64_t base = ShardBaseSeed();
  for (uint64_t round = 0; round < 6; ++round) {
    const XmlTree corpus = RandomCorpusTree(base + round);
    const std::vector<NodeId> docs = DocumentRoots(corpus);
    std::vector<uint64_t> weights;
    for (NodeId doc : docs) {
      weights.push_back(corpus.subtree_end(doc) - doc + 1);
    }
    for (size_t num_shards : {1u, 2u, 4u, 7u}) {
      const std::vector<ShardRange> ranges =
          PartitionByWeight(weights, num_shards);
      SCOPED_TRACE("seed " + std::to_string(base + round) + " shards " +
                   std::to_string(num_shards));
      for (uint32_t ordinal = 0; ordinal < docs.size(); ++ordinal) {
        const NodeId doc = docs[ordinal];
        const std::string dewey_str = corpus.DeweyString(doc);
        const std::vector<uint32_t> parsed = DeweyFromString(dewey_str);
        ASSERT_EQ(parsed.size(), 2u) << dewey_str;
        EXPECT_EQ(parsed[0], 1u);
        EXPECT_EQ(parsed[1], ordinal + 1) << dewey_str;
        EXPECT_EQ(corpus.FindByDewey(DeweyView(parsed)), doc);
        EXPECT_EQ(DocumentOrdinal(corpus, doc), ordinal);
        // The node one past a shard's last document belongs to a strictly
        // later shard (possibly skipping empty ranges) — boundaries cut
        // exactly between sibling subtrees, never through one.
        const uint32_t shard = ShardForDocument(ranges, ordinal);
        ASSERT_NE(shard, UINT32_MAX);
        if (ordinal + 1 < docs.size() &&
            ordinal + 1 == ranges[shard].doc_end) {
          const uint32_t next = ShardForDocument(ranges, ordinal + 1);
          ASSERT_NE(next, UINT32_MAX);
          EXPECT_GT(next, shard);
        }
      }
      // Every node below the root maps to a document whose subtree
      // actually contains it, so the preorder id range of each shard's
      // documents covers the shard's node population with no leaks.
      for (NodeId n = 1; n < corpus.size(); ++n) {
        const uint32_t ordinal = DocumentOrdinal(corpus, n);
        ASSERT_LT(ordinal, docs.size()) << "node " << n;
        const NodeId doc = docs[ordinal];
        EXPECT_TRUE(doc <= n && n <= corpus.subtree_end(doc))
            << "node " << n << " ordinal " << ordinal;
        EXPECT_NE(ShardForDocument(ranges, ordinal), UINT32_MAX);
      }
    }
  }
}

/// SLCA/ELCA anchors never straddle a partition boundary: any SLCA or ELCA
/// of depth >= min_depth (2) lies inside a single document, hence a single
/// shard — cross-shard witness combinations only ever meet at the root,
/// which min_depth excludes. This is the locality argument that lets each
/// shard compute its entities independently.
TEST(ShardPartitionTest, LcaAnchorsNeverStraddleShards) {
  const uint64_t base = ShardBaseSeed();
  for (uint64_t round = 0; round < 6; ++round) {
    const XmlTree corpus = RandomCorpusTree(base + 2000 + round);
    const std::vector<NodeId> docs = DocumentRoots(corpus);
    std::vector<uint64_t> weights;
    for (NodeId doc : docs) {
      weights.push_back(corpus.subtree_end(doc) - doc + 1);
    }
    const std::vector<ShardRange> ranges = PartitionByWeight(weights, 4);
    Rng rng(base + 2000 + round);

    for (int trial = 0; trial < 40; ++trial) {
      // Random witness lists spanning shards (the adversarial case).
      std::vector<std::vector<NodeId>> lists(1 + rng.Uniform(3));
      for (std::vector<NodeId>& list : lists) {
        const size_t n = 1 + rng.Uniform(6);
        for (size_t i = 0; i < n; ++i) {
          list.push_back(1 + static_cast<NodeId>(
                                 rng.Uniform(corpus.size() - 1)));
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
      }
      for (const std::vector<NodeId>& anchors :
           {ComputeSlcas(corpus, lists), ComputeElcas(corpus, lists)}) {
        for (NodeId anchor : anchors) {
          if (corpus.depth(anchor) < 2) continue;  // root: below min_depth
          const uint32_t shard =
              ShardForDocument(ranges, DocumentOrdinal(corpus, anchor));
          // The whole anchor subtree sits in that shard.
          for (NodeId n = anchor; n <= corpus.subtree_end(anchor); ++n) {
            ASSERT_EQ(ShardForDocument(ranges, DocumentOrdinal(corpus, n)),
                      shard)
                << "anchor " << anchor << " node " << n << " seed "
                << (base + 2000 + round);
          }
        }
      }
    }
  }
}

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "shard_manifest_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ShardManifestTest, RoundTrip) {
  ShardSetManifest manifest;
  manifest.generation = 42;
  manifest.shards = {
      {0, 0, 3, "shard-0000.idx", 123, 0xdeadbeefULL},
      {1, 3, 3, "shard-0001.idx", 0, 0},  // empty range is legal
      {2, 3, 9, "shard-0002.idx", 456, 0x1234ULL},
  };
  ASSERT_TRUE(SaveShardSetManifest(dir_, manifest).ok());
  Result<ShardSetManifest> loaded = LoadShardSetManifest(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 42u);
  ASSERT_EQ(loaded->shards.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded->shards[i].shard_id, manifest.shards[i].shard_id);
    EXPECT_EQ(loaded->shards[i].doc_begin, manifest.shards[i].doc_begin);
    EXPECT_EQ(loaded->shards[i].doc_end, manifest.shards[i].doc_end);
    EXPECT_EQ(loaded->shards[i].file, manifest.shards[i].file);
    EXPECT_EQ(loaded->shards[i].bytes, manifest.shards[i].bytes);
    EXPECT_EQ(loaded->shards[i].checksum, manifest.shards[i].checksum);
  }
}

TEST_F(ShardManifestTest, CorruptRecordIsParseError) {
  ShardSetManifest manifest;
  manifest.generation = 1;
  manifest.shards = {{0, 0, 5, "shard-0000.idx", 10, 7}};
  ASSERT_TRUE(SaveShardSetManifest(dir_, manifest).ok());
  Result<std::string> contents = ReadFileToString(dir_ + "/SHARDSET");
  ASSERT_TRUE(contents.ok());
  std::string flipped = contents.value();
  flipped[flipped.find("shard ")] ^= 0x20;  // flip one payload bit
  ASSERT_TRUE(AtomicWriteFile(dir_ + "/SHARDSET", flipped).ok());
  Result<ShardSetManifest> loaded = LoadShardSetManifest(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(ShardManifestTest, NonContiguousRangesRejected) {
  ShardSetManifest manifest;
  manifest.generation = 1;
  manifest.shards = {
      {0, 0, 3, "shard-0000.idx", 1, 1},
      {1, 4, 6, "shard-0001.idx", 1, 1},  // gap: doc 3 unowned
  };
  ASSERT_TRUE(SaveShardSetManifest(dir_, manifest).ok());
  Result<ShardSetManifest> loaded = LoadShardSetManifest(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

/// Save/Load of a whole sharded corpus: the reloaded shard set serves
/// (generation, ranges, global stats) exactly like the in-memory build.
TEST_F(ShardManifestTest, ShardedCorpusRoundTrip) {
  const XmlTree corpus = RandomCorpusTree(ShardBaseSeed() + 3000);
  ShardedCorpusOptions options;
  options.num_shards = 3;
  options.xclean.gamma = 0;
  Result<ShardedCorpus> built =
      BuildShardedCorpus(corpus, options, /*generation=*/7);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(SaveShardedCorpus(built.value(), dir_).ok());

  Result<ShardedCorpus> loaded = LoadShardedCorpus(dir_, options.xclean);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 7u);
  ASSERT_EQ(loaded->num_shards(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(loaded->ranges[s].doc_begin, built->ranges[s].doc_begin);
    EXPECT_EQ(loaded->ranges[s].doc_end, built->ranges[s].doc_end);
    EXPECT_EQ(loaded->layers->layers[s].index->tree().size(),
              built->layers->layers[s].index->tree().size());
  }
  // A tampered shard snapshot must fail the checksum gate, not load.
  Result<std::string> bytes = ReadFileToString(dir_ + "/shard-0001.idx");
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0xFF;
  ASSERT_TRUE(AtomicWriteFile(dir_ + "/shard-0001.idx", corrupted).ok());
  EXPECT_FALSE(LoadShardedCorpus(dir_, options.xclean).ok());
}

}  // namespace
}  // namespace xclean::shard
