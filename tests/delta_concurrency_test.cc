/// TSan-targeted stress: live writers (AddDocument / DeleteDocument /
/// CompactLive) interleaved with readers (SuggestBatch) on one
/// ServingEngine, across all three entity semantics. The assertions are
/// deliberately weak — every operation must succeed or fail with a
/// defined status, and tokens added-and-never-deleted must be suggestable
/// once the dust settles; the real subject is the interleaving itself
/// under `ctest -L stress` in the XCLEAN_SANITIZE=thread build, where any
/// data race between the delta stack's mutation path and the layered read
/// path is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/suggester.h"
#include "index/xml_index.h"
#include "serve/engine.h"
#include "xml/parser.h"

namespace xclean {
namespace {

constexpr const char* kBaseXml =
    "<corpus>"
    "<article><title>database systems</title></article>"
    "<article><title>query languages</title></article>"
    "<article><title>index structures</title></article>"
    "<article><title>spelling correction</title></article>"
    "</corpus>";

/// Alphabetic unique token (the tokenizer drops numbers): writer w's i-th
/// document carries "live<w as a-z><i in a-z base-26>".
std::string UniqueToken(size_t writer, size_t i) {
  std::string token = "live";
  token += static_cast<char>('a' + writer);
  token += static_cast<char>('a' + i / 26);
  token += static_cast<char>('a' + i % 26);
  return token;
}

std::unique_ptr<serve::ServingEngine> MakeEngine(Semantics semantics) {
  Result<XmlTree> tree = ParseXmlString(kBaseXml);
  EXPECT_TRUE(tree.ok());
  SuggesterOptions sopts;
  sopts.xclean.gamma = 0;
  sopts.xclean.semantics = semantics;
  serve::EngineOptions eopts;
  eopts.pool.num_threads = 2;
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromIndex(
          XmlIndex::Build(std::move(tree).value(), IndexOptions()), sopts));
  return std::make_unique<serve::ServingEngine>(std::move(suggester), eopts);
}

class DeltaConcurrencyTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(DeltaConcurrencyTest, WritersCompactionAndBatchReadersInterleave) {
  constexpr size_t kWriters = 3;
  constexpr size_t kReaders = 3;
  constexpr size_t kDocsPerWriter = 24;
  constexpr size_t kBatchesPerReader = 20;

  std::unique_ptr<serve::ServingEngine> engine_ptr = MakeEngine(GetParam());
  serve::ServingEngine& engine = *engine_ptr;
  ASSERT_TRUE(engine.EnableLiveUpdates().ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> adds{0}, deletes{0}, compactions{0}, served{0};
  std::vector<std::thread> threads;

  // Writers: add a uniquely-tokened document, delete every third one of
  // their own immediately after — exercising memtable insert, tombstone
  // write and the mutation-sequence bump under reader fire.
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = 0; i < kDocsPerWriter; ++i) {
        const std::string xml = "<article><title>" + UniqueToken(w, i) +
                                " concurrent</title></article>";
        Result<delta::DocId> id = engine.AddDocument(xml);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        adds.fetch_add(1, std::memory_order_relaxed);
        if (i % 3 == 2) {
          ASSERT_TRUE(engine.DeleteDocument(id.value()).ok());
          deletes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // One compactor folding the stack while writers grow it and readers
  // traverse it. Sync compactions chain the generations back to back.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Result<uint64_t> gen = engine.CompactLive(/*sync=*/true);
      ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      compactions.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Readers: batches mixing base-corpus misspellings with live tokens, so
  // every batch crosses the base index and whatever delta layers exist at
  // that instant. A batch pins one snapshot; acceptance of the batch is
  // all we may assert about content mid-flight.
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (size_t b = 0; b < kBatchesPerReader; ++b) {
        const std::vector<std::string> batch = {
            "databse", "quer langage",
            UniqueToken(r % kWriters, b % kDocsPerWriter), "indx"};
        std::vector<serve::ServeResult> results = engine.SuggestBatch(batch);
        ASSERT_EQ(results.size(), batch.size());
        for (const serve::ServeResult& result : results) {
          ASSERT_TRUE(result.status.ok()) << result.status.ToString();
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (size_t t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(adds.load(), kWriters * kDocsPerWriter);
  EXPECT_EQ(served.load(), kReaders * kBatchesPerReader * 4);
  EXPECT_GE(compactions.load(), 1u);

  // Settled-state checks: a kept token suggests, a deleted one does not,
  // and one more compaction over the quiesced stack changes neither.
  auto suggests = [&](const std::string& text, const std::string& word) {
    serve::ServeResult result = engine.Suggest(text);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    for (const Suggestion& s : result.suggestions) {
      for (const std::string& w : s.words) {
        if (w == word) return true;
      }
    }
    return false;
  };
  const std::string kept = UniqueToken(0, 0);      // i % 3 != 2: never deleted
  const std::string deleted = UniqueToken(0, 2);   // i % 3 == 2: deleted
  EXPECT_TRUE(suggests(kept, kept));
  EXPECT_FALSE(suggests(deleted, deleted));
  ASSERT_TRUE(engine.CompactLive(/*sync=*/true).ok());
  EXPECT_TRUE(suggests(kept, kept));
  EXPECT_FALSE(suggests(deleted, deleted));
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, DeltaConcurrencyTest,
                         ::testing::Values(Semantics::kNodeType,
                                           Semantics::kSlca,
                                           Semantics::kElca),
                         [](const auto& info) {
                           switch (info.param) {
                             case Semantics::kNodeType:
                               return "NodeType";
                             case Semantics::kSlca:
                               return "Slca";
                             default:
                               return "Elca";
                           }
                         });

}  // namespace
}  // namespace xclean
