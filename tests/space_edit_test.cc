#include "core/space_edit.h"

#include <gtest/gtest.h>

#include <set>

namespace xclean {
namespace {

Vocabulary MakeVocab(std::vector<std::string> words) {
  Vocabulary v;
  for (const auto& w : words) v.Intern(w);
  return v;
}

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

TEST(SpaceEditTest, OriginalAlwaysIncluded) {
  Vocabulary v = MakeVocab({"power", "point"});
  auto edits = ExpandSpaceEdits(Q({"power", "point"}), v, 0);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].changes, 0u);
  EXPECT_EQ(edits[0].query.keywords,
            (std::vector<std::string>{"power", "point"}));
}

TEST(SpaceEditTest, MergeRequiresVocabulary) {
  Vocabulary with = MakeVocab({"power", "point", "powerpoint"});
  auto edits = ExpandSpaceEdits(Q({"power", "point"}), with, 1);
  ASSERT_EQ(edits.size(), 2u);
  EXPECT_EQ(edits[1].query.keywords,
            (std::vector<std::string>{"powerpoint"}));
  EXPECT_EQ(edits[1].changes, 1u);

  Vocabulary without = MakeVocab({"power", "point"});
  EXPECT_EQ(ExpandSpaceEdits(Q({"power", "point"}), without, 1).size(), 1u);
}

TEST(SpaceEditTest, SplitRequiresBothPiecesInVocabulary) {
  Vocabulary v = MakeVocab({"data", "base", "database"});
  auto edits = ExpandSpaceEdits(Q({"database"}), v, 1);
  ASSERT_EQ(edits.size(), 2u);
  EXPECT_EQ(edits[1].query.keywords,
            (std::vector<std::string>{"data", "base"}));

  Vocabulary missing = MakeVocab({"database", "data"});
  EXPECT_EQ(ExpandSpaceEdits(Q({"database"}), missing, 1).size(), 1u);
}

TEST(SpaceEditTest, MinTokenLengthBlocksTinySplits) {
  Vocabulary v = MakeVocab({"abcdef", "abc", "def", "ab", "cdef"});
  auto edits = ExpandSpaceEdits(Q({"abcdef"}), v, 1, 3);
  // Only the 3+3 split qualifies; ab|cdef violates min length 3.
  ASSERT_EQ(edits.size(), 2u);
  EXPECT_EQ(edits[1].query.keywords, (std::vector<std::string>{"abc", "def"}));
}

TEST(SpaceEditTest, TauTwoChains) {
  Vocabulary v = MakeVocab({"alpha", "beta", "alphabeta", "gamma",
                            "betagamma"});
  auto edits = ExpandSpaceEdits(Q({"alpha", "beta", "gamma"}), v, 2);
  std::set<std::string> seen;
  for (const SpaceEdit& e : edits) seen.insert(e.query.ToString());
  EXPECT_TRUE(seen.count("alpha beta gamma"));
  EXPECT_TRUE(seen.count("alphabeta gamma"));
  EXPECT_TRUE(seen.count("alpha betagamma"));
  // Depth-2 change: merge then the other merge is impossible (overlapping);
  // but merge of alphabeta+gamma would need "alphabetagamma" in vocab.
  EXPECT_FALSE(seen.count("alphabetagamma"));
}

TEST(SpaceEditTest, ChangesCountIsBfsDepth) {
  Vocabulary v = MakeVocab({"aaa", "bbb", "aaabbb", "ccc", "aaabbbccc"});
  auto edits = ExpandSpaceEdits(Q({"aaa", "bbb", "ccc"}), v, 2);
  for (const SpaceEdit& e : edits) {
    if (e.query.keywords == std::vector<std::string>{"aaabbb", "ccc"}) {
      EXPECT_EQ(e.changes, 1u);
    }
    if (e.query.keywords == std::vector<std::string>{"aaabbbccc"}) {
      EXPECT_EQ(e.changes, 2u);
    }
  }
}

TEST(SpaceEditTest, NoDuplicates) {
  Vocabulary v = MakeVocab({"data", "base", "database"});
  auto edits = ExpandSpaceEdits(Q({"data", "base"}), v, 3);
  std::set<std::string> seen;
  for (const SpaceEdit& e : edits) {
    EXPECT_TRUE(seen.insert(e.query.ToString()).second)
        << "duplicate " << e.query.ToString();
  }
}

}  // namespace
}  // namespace xclean
