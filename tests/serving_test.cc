// Stress/equivalence test for the concurrent serving engine (registered
// under the `stress` ctest label; the primary target of the
// XCLEAN_SANITIZE=thread build):
//
//   - N threads hammer one ServingEngine with a mixed hit/miss workload
//     through both the sync and the async entry point;
//   - mid-run, the index is hot-swapped to a snapshot built from an
//     identical corpus;
//   - every result (cached, uncached, pre- and post-swap) must be
//     identical to what the single-threaded XCleanSuggester returns for
//     the same query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "index/index_io.h"
#include "serve/engine.h"

namespace xclean::serve {
namespace {

std::shared_ptr<const XCleanSuggester> BuildSmallDblpSuggester() {
  DblpGenOptions gen;
  gen.num_publications = 1200;
  gen.num_authors = 300;
  return std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
}

/// Misspelled-but-answerable queries sampled from the indexed corpus, the
/// way the paper's RAND workload is built.
std::vector<std::string> MakeWorkload(const XCleanSuggester& suggester,
                                      uint32_t count) {
  WorkloadOptions options;
  options.num_queries = count;
  options.seed = 20260807;
  std::vector<Query> initial =
      SampleInitialQueries(suggester.index(), options);
  Rng rng(options.seed);
  std::vector<std::string> out;
  out.reserve(initial.size());
  for (const Query& q : initial) {
    out.push_back(
        PerturbRand(q, suggester.index(), options, rng).ToString());
  }
  return out;
}

void ExpectSameSuggestions(const std::vector<Suggestion>& got,
                           const std::vector<Suggestion>& want,
                           const std::string& query) {
  ASSERT_EQ(got.size(), want.size()) << "query: " << query;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].words, want[i].words) << "query: " << query;
    EXPECT_DOUBLE_EQ(got[i].score, want[i].score) << "query: " << query;
    EXPECT_EQ(got[i].entity_count, want[i].entity_count)
        << "query: " << query;
  }
}

TEST(ServingTest, ConcurrentHammerWithHotSwapMatchesSingleThread) {
  std::shared_ptr<const XCleanSuggester> primary = BuildSmallDblpSuggester();
  // Identical corpus (deterministic generator, same seed) so equivalence
  // holds across the swap; a real deployment would swap in a *newer* index.
  std::shared_ptr<const XCleanSuggester> rebuilt = BuildSmallDblpSuggester();

  std::vector<std::string> queries = MakeWorkload(*primary, 32);
  ASSERT_GE(queries.size(), 8u);

  // Single-threaded ground truth.
  std::vector<std::vector<Suggestion>> reference;
  reference.reserve(queries.size());
  for (const std::string& q : queries) reference.push_back(primary->Suggest(q));

  EngineOptions options;
  options.pool.num_threads = 8;
  options.pool.queue_capacity = 8192;
  options.cache.capacity = 256;
  ServingEngine engine(primary, options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  std::atomic<int> async_done{0};
  std::atomic<int> async_accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t qi = static_cast<size_t>(t * 31 + i) % queries.size();
        const std::string& query = queries[qi];
        if (i % 2 == 0) {
          ServeResult r = engine.Suggest(query);
          ASSERT_TRUE(r.status.ok()) << r.status.ToString();
          ExpectSameSuggestions(r.suggestions, reference[qi], query);
        } else {
          Status s = engine.SubmitSuggest(
              query, [&async_done, &reference, qi, &queries](ServeResult r) {
                EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                ExpectSameSuggestions(r.suggestions, reference[qi],
                                      queries[qi]);
                async_done.fetch_add(1);
              });
          ASSERT_TRUE(s.ok()) << s.ToString();
          async_accepted.fetch_add(1);
        }
      }
    });
  }

  // Hot-swap roughly mid-run: in-flight requests finish on the old
  // snapshot, later ones are served (and cached) from the new one.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.SwapIndex(rebuilt);
  EXPECT_EQ(engine.snapshot_version(), 2u);
  EXPECT_EQ(engine.snapshot().get(), rebuilt.get());

  for (auto& th : threads) th.join();
  engine.Shutdown();  // drains remaining async requests
  EXPECT_EQ(async_done.load(), async_accepted.load());

  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.requests, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(m.completed, m.requests);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.snapshot_swaps, 1u);
  // 32 distinct queries x ~1200 executions: the cache must carry the bulk.
  EXPECT_GT(m.cache_hits, m.cache_misses);
  EXPECT_GT(m.latency_count, 0u);
  EXPECT_GT(m.latency_p99_ms, 0.0);
}

TEST(ServingTest, CacheHitReturnsSameListAsMiss) {
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  std::vector<std::string> queries = MakeWorkload(*suggester, 4);
  EngineOptions options;
  options.pool.num_threads = 1;
  ServingEngine engine(suggester, options);
  for (const std::string& q : queries) {
    ServeResult miss = engine.Suggest(q);
    ServeResult hit = engine.Suggest(q);
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_TRUE(hit.cache_hit);
    ExpectSameSuggestions(hit.suggestions, miss.suggestions, q);
  }
}

TEST(ServingTest, SwapInvalidatesCachedResults) {
  // Two *different* corpora: after the swap, a query cached under v1 must
  // be recomputed against the new index, not served stale.
  DblpGenOptions gen_a;
  gen_a.num_publications = 400;
  gen_a.seed = 1;
  DblpGenOptions gen_b = gen_a;
  gen_b.seed = 2;
  auto a = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen_a)));
  auto b = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen_b)));

  std::vector<std::string> queries = MakeWorkload(*a, 6);
  EngineOptions options;
  options.pool.num_threads = 1;
  ServingEngine engine(a, options);
  for (const std::string& q : queries) engine.Suggest(q);

  engine.SwapIndex(b);
  for (const std::string& q : queries) {
    ServeResult r = engine.Suggest(q);
    EXPECT_FALSE(r.cache_hit) << q;
    EXPECT_EQ(r.snapshot_version, 2u);
    ExpectSameSuggestions(r.suggestions, b->Suggest(q), q);
  }
}

TEST(ServingTest, SwapIndexFromFileHotSwapsASavedSnapshot) {
  // Offline-build / online-serve: a builder writes a snapshot file, the
  // running engine swaps onto it without restarting.
  DblpGenOptions gen;
  gen.num_publications = 400;
  gen.seed = 7;
  auto built = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
  std::string path = testing::TempDir() + "/xclean_serving_swap.idx";
  ASSERT_TRUE(SaveIndex(built->index(), path).ok());

  std::shared_ptr<const XCleanSuggester> initial = BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  ServingEngine engine(initial, options);
  EXPECT_EQ(engine.snapshot_version(), 1u);

  // A bad path must leave the current snapshot serving.
  Status bad = engine.SwapIndexFromFile("/no/such/snapshot.idx");
  EXPECT_EQ(bad.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.snapshot_version(), 1u);
  EXPECT_EQ(engine.snapshot().get(), initial.get());

  ASSERT_TRUE(engine.SwapIndexFromFile(path).ok());
  EXPECT_EQ(engine.snapshot_version(), 2u);
  for (const std::string& q : MakeWorkload(*built, 4)) {
    ServeResult r = engine.Suggest(q);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.snapshot_version, 2u);
    ExpectSameSuggestions(r.suggestions, built->Suggest(q), q);
  }
  std::remove(path.c_str());
}

TEST(ServingTest, ExpiredDeadlineIsSheddedNotServed) {
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  ServingEngine engine(suggester, options);

  std::atomic<bool> got_deadline_status{false};
  std::atomic<int> callbacks{0};
  Status s = engine.SubmitSuggest(
      "anything",
      std::chrono::steady_clock::now() - std::chrono::seconds(1),
      [&](ServeResult r) {
        got_deadline_status.store(r.status.code() ==
                                  StatusCode::kDeadlineExceeded);
        callbacks.fetch_add(1);
      });
  ASSERT_TRUE(s.ok());
  engine.Shutdown();
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_TRUE(got_deadline_status.load());
  EXPECT_EQ(engine.Metrics().deadline_exceeded, 1u);
}

TEST(ServingTest, ExpiredRequestsDoNotPinQueueSlots) {
  // Regression: a request that dies in the queue must hand its slot back
  // the moment it is evicted, so a flood of already-doomed requests can
  // never wedge the queue against live traffic.
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.pool.queue_capacity = 4;
  ServingEngine engine(suggester, options);

  // Block the single worker: its `done` callback runs on the worker
  // thread, so parking there keeps the queue under our control.
  std::atomic<bool> release{false};
  ASSERT_TRUE(engine
                  .SubmitSuggest("blocker query",
                                 [&release](ServeResult) {
                                   while (!release.load()) {
                                     std::this_thread::yield();
                                   }
                                 })
                  .ok());
  while (engine.queue_depth() != 0) std::this_thread::yield();

  // 16x the queue capacity, all expired on arrival: every submission must
  // be accepted (evicting a dead predecessor), and every one must resolve
  // to DeadlineExceeded.
  auto expired =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  std::atomic<int> deadline_cbs{0};
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    Status s = engine.SubmitSuggest(
        "flood query " + std::to_string(i), expired, [&](ServeResult r) {
          EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
          deadline_cbs.fetch_add(1);
        });
    if (s.ok()) ++accepted;
  }
  // Before the slot-accounting fix only `queue_capacity` of these fit.
  EXPECT_GT(accepted, 4);

  release.store(true);
  engine.Shutdown();
  EXPECT_EQ(deadline_cbs.load(), accepted);
  EXPECT_EQ(engine.Metrics().deadline_exceeded,
            static_cast<uint64_t>(accepted));
}

TEST(ServingTest, CorruptSnapshotFileNeverUnseatsTheServingSnapshot) {
  auto built = BuildSmallDblpSuggester();
  std::string path = testing::TempDir() + "/xclean_serving_corrupt.idx";
  ASSERT_TRUE(SaveIndex(built->index(), path).ok());
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  auto write_file = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  std::shared_ptr<const XCleanSuggester> initial = BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.swap_load_attempts = 2;
  options.swap_retry_backoff = std::chrono::milliseconds(1);
  ServingEngine engine(initial, options);
  std::vector<std::string> queries = MakeWorkload(*initial, 2);

  // Truncated file (torn write): swap fails, previous snapshot serves on.
  write_file(good.substr(0, good.size() / 2));
  Status truncated = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.snapshot_version(), 1u);
  EXPECT_EQ(engine.snapshot().get(), initial.get());
  EXPECT_TRUE(engine.Suggest(queries[0]).status.ok());

  // Checksum-corrupt file: same guarantee. Writing new bytes changed the
  // file's identity, so the earlier failure's quarantine does not apply.
  std::string corrupted = good;
  corrupted[good.size() - 10] =
      static_cast<char>(corrupted[good.size() - 10] ^ 0x5A);
  write_file(corrupted);
  Status corrupt = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(engine.snapshot_version(), 1u);

  // Same bytes again: quarantined, failed fast with Unavailable.
  Status quarantined = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(quarantined.ok());
  EXPECT_EQ(quarantined.code(), StatusCode::kUnavailable);

  // Republished intact snapshot loads and swaps.
  write_file(good);
  ASSERT_TRUE(engine.SwapIndexFromFile(path).ok());
  EXPECT_EQ(engine.snapshot_version(), 2u);
  EXPECT_TRUE(engine.Suggest(queries[1]).status.ok());
  std::remove(path.c_str());
}

// Regression: quarantine identity is the file's content checksum, not
// (size, mtime). A corrupt snapshot rewritten *in place* with different
// corrupt bytes of the same length — and, forced here, the same mtime, as
// happens for real within one filesystem-timestamp granule — must be
// re-examined, not fast-failed off the stale quarantine entry.
TEST(ServingTest, QuarantineSeesSameSizeSameMtimeRewrites) {
  namespace fs = std::filesystem;
  std::shared_ptr<const XCleanSuggester> initial = BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.swap_load_attempts = 1;
  ServingEngine engine(initial, options);

  const std::string path =
      testing::TempDir() + "/xclean_serving_rewrite.idx";
  auto write_file = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  write_file(std::string(4096, 'A'));
  const fs::file_time_type pinned_mtime = fs::last_write_time(path);
  Status first = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kParseError);  // bad magic
  Status quarantined = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(quarantined.ok());
  EXPECT_EQ(quarantined.code(), StatusCode::kUnavailable);

  // In-place rewrite: same size, same (pinned) mtime, different bytes. A
  // (size, mtime) key cannot tell the two files apart; the content key
  // must — the engine re-reads and reports the file's own parse failure.
  write_file(std::string(4096, 'B'));
  fs::last_write_time(path, pinned_mtime);
  Status second = engine.SwapIndexFromFile(path);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(ServingTest, OversizedQueryIsRejectedAsInvalidArgument) {
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.query_limits.max_bytes = 64;
  options.query_limits.max_keywords = 4;
  ServingEngine engine(suggester, options);

  ServeResult big = engine.Suggest(std::string(1000, 'a'));
  EXPECT_EQ(big.status.code(), StatusCode::kInvalidArgument);
  // Six keywords that all survive normalization (single letters would be
  // dropped by the tokenizer before the limit is checked).
  ServeResult wide = engine.Suggest("alpha beta gamma delta epsilon zeta");
  EXPECT_EQ(wide.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Metrics().invalid_arguments, 2u);
  EXPECT_EQ(engine.Metrics().completed, 0u);
  // A conforming query still serves.
  EXPECT_TRUE(engine.Suggest("information retrieval").status.ok());
}

TEST(ServingTest, TightBudgetMarksTruncationInsteadOfOverrunning) {
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.cache.capacity = 0;  // force real computation
  options.max_candidates_per_query = 1;
  ServingEngine engine(suggester, options);

  // Misspelled corpus queries span far more than one candidate; the
  // budget must trip on some of them and the result must say so — either
  // a partial top-k marked truncated or an honest DeadlineExceeded,
  // never a silently complete answer.
  int truncated_count = 0;
  for (const std::string& q : MakeWorkload(*suggester, 8)) {
    ServeResult r = engine.Suggest(q);
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    if (r.truncated) ++truncated_count;
  }
  EXPECT_GT(truncated_count, 0);
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.truncated_results, static_cast<uint64_t>(truncated_count));
}

TEST(ServingTest, CancellationRacingHotSwapIsSafe) {
  // TSan target: worker threads cancel mid-algorithm (tight deadline +
  // tiny work budget) while another thread hot-swaps the index under
  // them. Every outcome must be one of the documented statuses and
  // nothing may crash or race.
  std::shared_ptr<const XCleanSuggester> primary = BuildSmallDblpSuggester();
  std::shared_ptr<const XCleanSuggester> rebuilt = BuildSmallDblpSuggester();
  std::vector<std::string> queries = MakeWorkload(*primary, 16);

  EngineOptions options;
  options.pool.num_threads = 4;
  options.cache.capacity = 0;  // every request computes (and can cancel)
  options.default_deadline = std::chrono::milliseconds(2);
  options.max_candidates_per_query = 64;
  ServingEngine engine(primary, options);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    int i = 0;
    while (!stop.load()) {
      engine.SwapIndex((++i % 2) != 0 ? rebuilt : primary);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string& query =
            queries[static_cast<size_t>(t * 131 + i) % queries.size()];
        ServeResult r = engine.Suggest(query);
        bool acceptable =
            r.status.ok() ||
            r.status.code() == StatusCode::kDeadlineExceeded ||
            r.status.code() == StatusCode::kUnavailable;
        EXPECT_TRUE(acceptable) << r.status.ToString();
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  swapper.join();
  engine.Shutdown();
  EXPECT_GT(engine.Metrics().requests, 0u);
}

TEST(ServingTest, BackpressureRejectsWhenQueueFull) {
  std::shared_ptr<const XCleanSuggester> suggester =
      BuildSmallDblpSuggester();
  EngineOptions options;
  options.pool.num_threads = 1;
  options.pool.queue_capacity = 1;
  ServingEngine engine(suggester, options);

  // Saturate: the single worker plus a queue of one can hold at most a
  // couple of requests; submitting many fast must hit Unavailable. Each
  // query is distinct so every request is a cache miss the worker has to
  // compute — identical queries become instant cache hits, letting the
  // worker drain as fast as we submit.
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    Status s = engine.SubmitSuggest(
        "information retrieval systems " + std::to_string(i),
        [](ServeResult) {});
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  engine.Shutdown();
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(engine.Metrics().rejected, static_cast<uint64_t>(rejected));
}

}  // namespace
}  // namespace xclean::serve
