#include "lm/result_type.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.h"

namespace xclean {
namespace {

/// A corpus in the shape of the paper's Example 3: candidate "trie icde"
/// must pick the type with the best log(1 + prod) * r^depth trade-off.
std::unique_ptr<XmlIndex> BuildExample() {
  // Counts engineered so that:
  //   f_trie^{/a/c}   = 2, f_trie^{/a/c/x} = 3,
  //   f_trie^{/a/d}   = 2, f_trie^{/a/d/x} = 2,
  //   f_icde^{/a/c}   = 1, f_icde^{/a/c/x} = 1,
  //   f_icde^{/a/d}   = 2, f_icde^{/a/d/x} = 2.
  const char* xml =
      "<a>"
      "<c><x>trie</x><x>trie trie</x></c>"       // c1: two x with trie
      "<c><x>trie icde</x></c>"                  // c2: trie + icde
      "<d><x>trie icde</x></d>"                  // d1
      "<d><x>trie icde</x></d>"                  // d2
      "</a>";
  Result<XmlTree> tree = ParseXmlString(xml);
  EXPECT_TRUE(tree.ok());
  return XmlIndex::Build(std::move(tree).value());
}

TEST(ResultTypeTest, UtilityMatchesFormula) {
  auto index = BuildExample();
  const XmlTree& t = index->tree();
  ResultTypeScorer scorer(*index, 0.8);
  std::vector<TokenId> candidate = {index->vocabulary().Find("trie"),
                                    index->vocabulary().Find("icde")};

  PathId p_c = t.FindPath("/a/c");
  PathId p_cx = t.FindPath("/a/c/x");
  PathId p_d = t.FindPath("/a/d");
  PathId p_dx = t.FindPath("/a/d/x");

  EXPECT_NEAR(scorer.Utility(candidate, p_c),
              std::log1p(2.0 * 1.0) * std::pow(0.8, 2), 1e-12);
  EXPECT_NEAR(scorer.Utility(candidate, p_cx),
              std::log1p(3.0 * 1.0) * std::pow(0.8, 3), 1e-12);
  EXPECT_NEAR(scorer.Utility(candidate, p_d),
              std::log1p(2.0 * 2.0) * std::pow(0.8, 2), 1e-12);
  EXPECT_NEAR(scorer.Utility(candidate, p_dx),
              std::log1p(2.0 * 2.0) * std::pow(0.8, 3), 1e-12);
}

TEST(ResultTypeTest, FindResultTypePicksPaperWinner) {
  // As in Example 3: with r = 0.8, U(C, /a/d) is the largest.
  auto index = BuildExample();
  ResultTypeScorer scorer(*index, 0.8);
  std::vector<TokenId> candidate = {index->vocabulary().Find("trie"),
                                    index->vocabulary().Find("icde")};
  ResultTypeScorer::Choice choice = scorer.FindResultType(candidate, 2);
  EXPECT_EQ(choice.path, index->tree().FindPath("/a/d"));
  EXPECT_NEAR(choice.utility, std::log1p(4.0) * 0.64, 1e-12);
  EXPECT_NEAR(choice.freq_product, 4.0, 1e-12);
}

TEST(ResultTypeTest, MinDepthExcludesShallowTypes) {
  auto index = BuildExample();
  ResultTypeScorer scorer(*index, 0.8);
  std::vector<TokenId> candidate = {index->vocabulary().Find("trie"),
                                    index->vocabulary().Find("icde")};
  // With min_depth 3 only the leaf types qualify; /a/d/x wins (product 4 at
  // depth 3 beats /a/c/x's product 3).
  ResultTypeScorer::Choice choice = scorer.FindResultType(candidate, 3);
  EXPECT_EQ(choice.path, index->tree().FindPath("/a/d/x"));
}

TEST(ResultTypeTest, NoCommonTypeReturnsInvalid) {
  auto index = XmlIndex::Build(
      std::move(ParseXmlString("<a><b><x>foo</x></b><c><y>bar</y></c></a>")
                    .value()));
  ResultTypeScorer scorer(*index, 0.8);
  std::vector<TokenId> candidate = {index->vocabulary().Find("foo"),
                                    index->vocabulary().Find("bar")};
  // foo and bar only co-occur under /a (depth 1) — below min_depth 2.
  ResultTypeScorer::Choice choice = scorer.FindResultType(candidate, 2);
  EXPECT_EQ(choice.path, XmlTree::kInvalidPath);
  // min_depth 1 admits the root type.
  choice = scorer.FindResultType(candidate, 1);
  EXPECT_EQ(choice.path, index->tree().FindPath("/a"));
}

TEST(ResultTypeTest, SingleKeywordCandidate) {
  auto index = BuildExample();
  ResultTypeScorer scorer(*index, 0.8);
  std::vector<TokenId> candidate = {index->vocabulary().Find("trie")};
  ResultTypeScorer::Choice choice = scorer.FindResultType(candidate, 2);
  // f_trie: /a/c = 2, /a/c/x = 3, /a/d = 2, /a/d/x = 2.
  // U(/a/c) = log(3) * 0.64 ≈ 0.703 ; U(/a/c/x) = log(4) * 0.512 ≈ 0.710.
  EXPECT_EQ(choice.path, index->tree().FindPath("/a/c/x"));
}

TEST(ResultTypeTest, ReductionFactorShiftsWinner) {
  auto index = BuildExample();
  std::vector<TokenId> candidate = {index->vocabulary().Find("trie")};
  // A harsher depth discount flips the single-keyword winner to the
  // shallower type.
  ResultTypeScorer scorer(*index, 0.5);
  EXPECT_EQ(scorer.FindResultType(candidate, 2).path,
            index->tree().FindPath("/a/c"));
}

}  // namespace
}  // namespace xclean
