#include "text/keyboard.h"

#include <gtest/gtest.h>

#include <string>

namespace xclean {
namespace {

TEST(KeyboardTest, NeighborsAreSymmetric) {
  for (char c = 'a'; c <= 'z'; ++c) {
    for (char n : KeyboardNeighbors(c)) {
      EXPECT_NE(KeyboardNeighbors(n).find(c), std::string::npos)
          << c << " -> " << n << " not symmetric";
    }
  }
}

TEST(KeyboardTest, EveryLetterHasNeighbors) {
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_FALSE(KeyboardNeighbors(c).empty()) << c;
  }
}

TEST(KeyboardTest, NoSelfNeighbors) {
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_EQ(KeyboardNeighbors(c).find(c), std::string::npos) << c;
  }
}

TEST(KeyboardTest, NonLettersHaveNone) {
  EXPECT_TRUE(KeyboardNeighbors('1').empty());
  EXPECT_TRUE(KeyboardNeighbors(' ').empty());
  EXPECT_TRUE(KeyboardNeighbors('A').empty());  // lowercase only
}

TEST(KeyboardTest, RandomNeighborIsValid) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    char c = static_cast<char>('a' + rng.Uniform(26));
    char n = RandomKeyboardNeighbor(c, rng);
    EXPECT_NE(KeyboardNeighbors(c).find(n), std::string::npos);
  }
}

TEST(KeyboardTest, RandomNeighborOfNonLetterIsDifferentLetter) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    char n = RandomKeyboardNeighbor('7', rng);
    EXPECT_GE(n, 'a');
    EXPECT_LE(n, 'z');
  }
}

}  // namespace
}  // namespace xclean
