#include "data/wordlist.h"

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"

namespace xclean {
namespace {

void CheckPool(std::span<const std::string_view> pool, const char* name) {
  EXPECT_FALSE(pool.empty()) << name;
  std::set<std::string_view> seen;
  for (std::string_view w : pool) {
    EXPECT_GE(w.size(), 3u) << name << ": " << w;
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << name << ": " << w;
    }
    EXPECT_TRUE(seen.insert(w).second) << name << " duplicate: " << w;
  }
}

TEST(WordlistTest, AllPoolsWellFormed) {
  CheckPool(CommonEnglishWords(), "english");
  CheckPool(ComputerScienceTerms(), "cs");
  CheckPool(Surnames(), "surnames");
  CheckPool(FirstNames(), "firstnames");
  CheckPool(VenueNames(), "venues");
  CheckPool(WikiTopics(), "topics");
}

TEST(WordlistTest, PoolSizes) {
  EXPECT_GE(CommonEnglishWords().size(), 500u);
  EXPECT_GE(ComputerScienceTerms().size(), 180u);
  EXPECT_GE(Surnames().size(), 120u);
  EXPECT_GE(FirstNames().size(), 80u);
  EXPECT_GE(VenueNames().size(), 30u);
  EXPECT_GE(WikiTopics().size(), 80u);
}

TEST(ExpandedWordPoolTest, ReachesTargetAndDedupes) {
  std::vector<std::string> pool = ExpandedWordPool(5000, 11);
  EXPECT_GE(pool.size(), 5000u);
  std::set<std::string> seen(pool.begin(), pool.end());
  EXPECT_EQ(seen.size(), pool.size());
}

TEST(ExpandedWordPoolTest, ContainsBaseWordsFirst) {
  std::vector<std::string> pool = ExpandedWordPool(3000, 11);
  auto base = CommonEnglishWords();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(pool[i], base[i]);
  }
}

TEST(ExpandedWordPoolTest, DeterministicInSeed) {
  EXPECT_EQ(ExpandedWordPool(4000, 7), ExpandedWordPool(4000, 7));
  EXPECT_NE(ExpandedWordPool(4000, 7), ExpandedWordPool(4000, 8));
}

TEST(ExpandedWordPoolTest, DerivedWordsLookEnglish) {
  for (const std::string& w : ExpandedWordPool(4000, 3)) {
    EXPECT_GE(w.size(), 3u);
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
  }
}

}  // namespace
}  // namespace xclean
