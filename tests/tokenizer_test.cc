#include "xml/tokenizer.h"

#include <gtest/gtest.h>

namespace xclean {
namespace {

TEST(TokenizerTest, SplitsOnPunctuationAndSpace) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("hello, world! foo-bar"),
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(TokenizerTest, Lowercases) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello WORLD"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("go to big cities"),
            (std::vector<std::string>{"big", "cities"}));
}

TEST(TokenizerTest, DropsNumbers) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("pages 123-456 volume"),
            (std::vector<std::string>{"pages", "volume"}));
}

TEST(TokenizerTest, KeepsAlphanumericMixes) {
  Tokenizer t;
  // Mixed alphanumerics are content-bearing ("x86" is 3 chars and not a
  // pure number, so it survives); "42" falls to the length filter.
  EXPECT_EQ(t.Tokenize("icde2011 x86 42"),
            (std::vector<std::string>{"icde2011", "x86"}));
}

TEST(TokenizerTest, DropsStopwords) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("the tree and the trie"),
            (std::vector<std::string>{"tree", "trie"}));
}

TEST(TokenizerTest, StopwordsCanBeKept) {
  TokenizerOptions options;
  options.drop_stopwords = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("the tree"),
            (std::vector<std::string>{"the", "tree"}));
}

TEST(TokenizerTest, MinLengthConfigurable) {
  TokenizerOptions options;
  options.min_token_length = 1;
  options.drop_stopwords = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("a bb ccc"),
            (std::vector<std::string>{"a", "bb", "ccc"}));
}

TEST(TokenizerTest, Utf8BytesSurvive) {
  Tokenizer t;
  std::vector<std::string> tokens = t.Tokenize("schütze model");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "schütze");
  EXPECT_EQ(tokens[1], "model");
}

TEST(TokenizerTest, EmptyAndPurePunctuation) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, NormalizeTokenGluesPunctuatedWord) {
  Tokenizer t;
  EXPECT_EQ(t.NormalizeToken("geo-tagging,"), "geotagging");
  EXPECT_EQ(t.NormalizeToken("Hello!"), "hello");
  EXPECT_EQ(t.NormalizeToken("of"), "");    // too short
  EXPECT_EQ(t.NormalizeToken("the"), "");   // stopword
  EXPECT_EQ(t.NormalizeToken("2009"), "");  // number
}

TEST(TokenizerTest, IsStopword) {
  EXPECT_TRUE(Tokenizer::IsStopword("the"));
  EXPECT_TRUE(Tokenizer::IsStopword("with"));
  EXPECT_FALSE(Tokenizer::IsStopword("tree"));
}

}  // namespace
}  // namespace xclean
