// index/manifest.h: journal replay, torn-tail discard, publish/retire
// lifecycle, and generation-fallback recovery.

#include "index/manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/durable_file.h"
#include "common/fault_injection.h"
#include "data/dblp_gen.h"
#include "index/xml_index.h"

namespace xclean {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<XmlIndex> BuildIndex(uint64_t seed, uint32_t pubs = 120) {
  DblpGenOptions gen;
  gen.num_publications = pubs;
  gen.seed = seed;
  return XmlIndex::Build(GenerateDblp(gen), IndexOptions());
}

/// Fresh scratch directory per test.
class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/manifest_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }

  std::string dir_;
};

TEST_F(ManifestTest, EmptyDirectoryIsEmptyState) {
  Result<ManifestState> state = ReplayManifest(dir_);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state.value().live.empty());
  EXPECT_EQ(state.value().next_generation, 1u);
  EXPECT_EQ(state.value().torn_bytes, 0u);
}

TEST_F(ManifestTest, PublishJournalsAndReplayAgrees) {
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);

  PublishOptions options;
  options.sync = false;  // keep the test fast; atomicity is unaffected
  Result<PublishedSnapshot> p1 = lifecycle.Publish(*index, options);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  EXPECT_EQ(p1.value().generation, 1u);
  EXPECT_TRUE(fs::exists(p1.value().path));

  Result<PublishedSnapshot> p2 = lifecycle.Publish(*index, options);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value().generation, 2u);

  // A second handle replays to the same state.
  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().live.size(), 2u);
  EXPECT_EQ(replayed.value().live[0].generation, 1u);
  EXPECT_EQ(replayed.value().live[1].generation, 2u);
  EXPECT_EQ(replayed.value().live[1].checksum, p2.value().checksum);
  EXPECT_EQ(replayed.value().next_generation, 3u);
  EXPECT_EQ(replayed.value().torn_bytes, 0u);
}

TEST_F(ManifestTest, RetireKeepsNewestAndDeletesFiles) {
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);
  PublishOptions options;
  options.sync = false;
  std::string first_path;
  for (int i = 0; i < 3; ++i) {
    Result<PublishedSnapshot> p = lifecycle.Publish(*index, options);
    ASSERT_TRUE(p.ok());
    if (i == 0) first_path = p.value().path;
  }

  ASSERT_TRUE(lifecycle.RetireOldGenerations(/*keep_latest=*/1).ok());
  EXPECT_EQ(lifecycle.state().live.size(), 1u);
  EXPECT_EQ(lifecycle.state().live[0].generation, 3u);
  EXPECT_FALSE(fs::exists(first_path));

  // Replay sees the retirements; generation numbers are never reused.
  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().live.size(), 1u);
  EXPECT_EQ(replayed.value().live[0].generation, 3u);
  EXPECT_EQ(replayed.value().next_generation, 4u);

  SnapshotLifecycle reopened(dir_);
  ASSERT_TRUE(reopened.Open().ok());
  Result<PublishedSnapshot> next = reopened.Publish(*index, options);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().generation, 4u);
}

TEST_F(ManifestTest, TornTailIsDiscardedNotFatal) {
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);
  PublishOptions options;
  options.sync = false;
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());

  // Tear the journal mid-final-record: replay must fall back to the state
  // as of the last intact record (generation 1 live only).
  Result<std::string> journal = ReadFileToString(ManifestPath());
  ASSERT_TRUE(journal.ok());
  const std::string& bytes = journal.value();
  const size_t cut = bytes.size() - 7;  // inside the last record's checksum
  {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
  }
  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().live.size(), 1u);
  EXPECT_EQ(replayed.value().live[0].generation, 1u);
  EXPECT_GT(replayed.value().torn_bytes, 0u);
  EXPECT_EQ(replayed.value().valid_bytes + replayed.value().torn_bytes,
            cut);
}

TEST_F(ManifestTest, OpenTruncatesTornTailSoRepublishIsReplayable) {
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);
  PublishOptions options;
  options.sync = false;
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());

  // Tear the journal mid-final-record, as a crash mid-append would.
  Result<std::string> journal = ReadFileToString(ManifestPath());
  ASSERT_TRUE(journal.ok());
  const std::string& bytes = journal.value();
  {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  Result<ManifestState> torn = ReplayManifest(dir_);
  ASSERT_TRUE(torn.ok());
  const uint64_t valid_prefix = torn.value().valid_bytes;
  ASSERT_GT(torn.value().torn_bytes, 0u);

  // A restarted publisher must cut the corrupt tail back to the valid
  // prefix: with O_APPEND, records appended after it would otherwise be
  // unreachable by replay forever.
  SnapshotLifecycle reopened(dir_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.state().torn_bytes, 0u);
  EXPECT_EQ(static_cast<uint64_t>(fs::file_size(ManifestPath())),
            valid_prefix);

  Result<PublishedSnapshot> p = reopened.Publish(*index, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().generation, 2u);  // torn publish never committed

  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().torn_bytes, 0u);
  ASSERT_EQ(replayed.value().live.size(), 2u);
  EXPECT_EQ(replayed.value().live[1].generation, 2u);
}

TEST_F(ManifestTest, FailedJournalAppendForcesReopenBeforeNextPublish) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
  }
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);
  PublishOptions options;
  options.sync = false;
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());

  // The snapshot file lands but its journal append fails: the publish
  // must not commit, and the handle may no longer trust its in-memory
  // view of the journal.
  fault::ArmStatus("durable.append", Status::Internal("injected"), 1);
  Result<PublishedSnapshot> failed = lifecycle.Publish(*index, options);
  ASSERT_FALSE(failed.ok());
  fault::DisarmAll();

  // The retry re-opens (replay + tail repair) and commits cleanly with
  // the generation number the journal actually supports.
  Result<PublishedSnapshot> retried = lifecycle.Publish(*index, options);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().generation, 2u);

  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().torn_bytes, 0u);
  ASSERT_EQ(replayed.value().live.size(), 2u);
  EXPECT_EQ(replayed.value().live.back().generation, 2u);
  EXPECT_EQ(replayed.value().next_generation,
            lifecycle.state().next_generation);
}

TEST_F(ManifestTest, RecoverLoadsNewestGeneration) {
  SnapshotLifecycle lifecycle(dir_);
  auto gen1 = BuildIndex(1);
  auto gen2 = BuildIndex(2, 150);
  PublishOptions options;
  options.sync = false;
  ASSERT_TRUE(lifecycle.Publish(*gen1, options).ok());
  ASSERT_TRUE(lifecycle.Publish(*gen2, options).ok());

  Result<RecoveredSnapshot> recovered = RecoverLatestSnapshot(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().generation, 2u);
  EXPECT_EQ(recovered.value().generations_skipped, 0u);
  EXPECT_EQ(recovered.value().index->total_tokens(), gen2->total_tokens());
}

TEST_F(ManifestTest, RecoverFallsBackPastCorruptNewestGeneration) {
  SnapshotLifecycle lifecycle(dir_);
  auto gen1 = BuildIndex(1);
  auto gen2 = BuildIndex(2, 150);
  PublishOptions options;
  options.sync = false;
  Result<PublishedSnapshot> p1 = lifecycle.Publish(*gen1, options);
  ASSERT_TRUE(p1.ok());
  Result<PublishedSnapshot> p2 = lifecycle.Publish(*gen2, options);
  ASSERT_TRUE(p2.ok());

  // Corrupt generation 2's file in place (size preserved): the content
  // checksum recorded at publish time catches it and recovery falls back.
  {
    std::fstream f(p2.value().path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(p2.value().bytes / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(p2.value().bytes / 2));
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  Result<RecoveredSnapshot> recovered = RecoverLatestSnapshot(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().generation, 1u);
  EXPECT_EQ(recovered.value().generations_skipped, 1u);
  EXPECT_EQ(recovered.value().index->total_tokens(), gen1->total_tokens());

  // Destroy generation 1 as well: nothing recoverable -> NotFound.
  fs::remove(p1.value().path);
  Result<RecoveredSnapshot> none = RecoverLatestSnapshot(dir_);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

TEST_F(ManifestTest, MidJournalCorruptionPoisonsOnlyTheTail) {
  SnapshotLifecycle lifecycle(dir_);
  auto index = BuildIndex(1);
  PublishOptions options;
  options.sync = false;
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());
  const size_t after_gen1 = fs::file_size(ManifestPath());
  ASSERT_TRUE(lifecycle.Publish(*index, options).ok());

  // Flip one byte inside generation 2's record: that record and anything
  // after it are discarded; generation 1 survives.
  Result<std::string> journal = ReadFileToString(ManifestPath());
  ASSERT_TRUE(journal.ok());
  std::string bytes = journal.value();
  bytes[after_gen1 + 3] = static_cast<char>(bytes[after_gen1 + 3] ^ 0x01);
  {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().live.size(), 1u);
  EXPECT_EQ(replayed.value().live[0].generation, 1u);
}

TEST_F(ManifestTest, UnsupportedJournalVersionRefusesToGuess) {
  fs::create_directories(dir_);
  const std::string body = "version 99";
  const std::string line =
      body + " #" +
      [&] {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          Fnv1a(body.data(), body.size())));
        return std::string(buf);
      }() +
      "\n";
  {
    std::ofstream out(ManifestPath(), std::ios::binary);
    out << line;
  }
  Result<ManifestState> replayed = ReplayManifest(dir_);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace xclean
