#include "text/soundex.h"

#include <gtest/gtest.h>

namespace xclean {
namespace {

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(Soundex("robert"), "R163");
  EXPECT_EQ(Soundex("rupert"), "R163");
  EXPECT_EQ(Soundex("ashcraft"), "A261");  // h collapses neighbors
  EXPECT_EQ(Soundex("ashcroft"), "A261");
  EXPECT_EQ(Soundex("tymczak"), "T522");
  EXPECT_EQ(Soundex("pfister"), "P236");
  EXPECT_EQ(Soundex("honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("Robert"), Soundex("ROBERT"));
}

TEST(SoundexTest, ShortWordsPadded) {
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("ab"), "A100");
}

TEST(SoundexTest, NonAlphaIgnored) {
  EXPECT_EQ(Soundex("o'brien"), Soundex("obrien"));
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex(""), "");
}

TEST(SoundexTest, RepeatHandling) {
  // Adjacent same-code letters collapse into one digit; vowel-separated
  // repeats emit again. The initial letter contributes no digit itself but
  // seeds the run (so "dodd" = D + d(emit 3) + d(collapsed) = D300).
  EXPECT_EQ(Soundex("dodd"), "D300");
  EXPECT_EQ(Soundex("dada"), "D300");
  EXPECT_EQ(Soundex("sasas"), "S220");
}

TEST(SoundexTest, EqualityHelper) {
  EXPECT_TRUE(SoundexEqual("smith", "smyth"));
  EXPECT_FALSE(SoundexEqual("smith", "jones"));
  EXPECT_FALSE(SoundexEqual("", "jones"));
}

}  // namespace
}  // namespace xclean
