// Unit tests for the degradation ladder (serve/overload.h) and its
// integration into ServingEngine: tier transitions from queue fill and
// latency pressure, hysteresis on the way down, per-tier accounting, and
// the serving semantics of each tier (reduced tuning, cache-only
// shedding, full shed).

#include "serve/overload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "serve/engine.h"

namespace xclean {
namespace {

TEST(OverloadControllerTest, StaysFullUnderLightLoad) {
  OverloadController controller;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(controller.Evaluate(10, 1000), ServiceTier::kFull);
  }
  EXPECT_EQ(controller.tier_requests()[0], 100u);
}

TEST(OverloadControllerTest, EscalatesImmediatelyOnQueueFill) {
  OverloadController controller;
  EXPECT_EQ(controller.Evaluate(500, 1000), ServiceTier::kReduced);
  EXPECT_EQ(controller.Evaluate(750, 1000), ServiceTier::kCacheOnly);
  EXPECT_EQ(controller.Evaluate(950, 1000), ServiceTier::kShed);
  // Escalation can jump several rungs in one evaluation.
  OverloadController fresh;
  EXPECT_EQ(fresh.Evaluate(1000, 1000), ServiceTier::kShed);
}

TEST(OverloadControllerTest, StepsDownOneTierPerHoldPeriod) {
  OverloadControllerOptions options;
  options.step_down_hold_ms = 0;  // no hold: every calm evaluation steps
  OverloadController controller(options);
  ASSERT_EQ(controller.Evaluate(1000, 1000), ServiceTier::kShed);
  // Pressure vanished, but recovery is one rung at a time.
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kReduced);
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kFull);
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kFull);
}

TEST(OverloadControllerTest, HoldPeriodBlocksImmediateStepDown) {
  OverloadControllerOptions options;
  options.step_down_hold_ms = 60000;  // effectively forever for this test
  OverloadController controller(options);
  ASSERT_EQ(controller.Evaluate(950, 1000), ServiceTier::kShed);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kShed)
        << "stepped down before the hold elapsed (i=" << i << ")";
  }
}

TEST(OverloadControllerTest, LatencyPressureEscalatesWithoutQueue) {
  OverloadControllerOptions options;
  options.deadline_ms = 100.0;
  OverloadController controller(options);
  // Saturate the p95 estimate well above the deadline: every request is
  // slow even though the queue is empty (the slow-poison regime).
  for (int i = 0; i < 2000; ++i) controller.RecordLatency(95.0);
  EXPECT_GT(controller.p95_ms(), options.cache_only_latency * 100.0);
  // Latency alone reaches cache-only but never kShed: shedding everything
  // is reserved for genuine queue overflow.
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);
}

TEST(OverloadControllerTest, P95EstimatorConvergesNearTheQuantile) {
  OverloadController controller;
  // 95% of samples at 10ms, 5% at 200ms, interleaved deterministically.
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < 19; ++i) controller.RecordLatency(10.0);
    controller.RecordLatency(200.0);
  }
  // The stochastic estimator should settle between the two modes — near
  // the p95 boundary, far from both the median and the max.
  EXPECT_GT(controller.p95_ms(), 10.0);
  EXPECT_LT(controller.p95_ms(), 200.0);
}

TEST(OverloadControllerTest, ResetLatencySignalZeroesTheEstimate) {
  ManualClock clock;
  OverloadControllerOptions options;
  options.deadline_ms = 100.0;
  options.clock = &clock;
  OverloadController controller(options);
  for (int i = 0; i < 2000; ++i) controller.RecordLatency(95.0);
  ASSERT_GT(controller.p95_ms(), 0.0);
  ASSERT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);

  // An index swap invalidates the latency history: without the reset the
  // asymmetric EWMA needs ~19 samples per alpha step to walk back down,
  // pinning a fast new index at a degraded tier on stale evidence.
  controller.ResetLatencySignal();
  EXPECT_EQ(controller.p95_ms(), 0.0);
  // With the signal cleared (and no queue pressure), the tier recovers
  // through the normal hold-period hysteresis — advanced in virtual time,
  // so this test never sleeps.
  clock.Advance(std::chrono::milliseconds(options.step_down_hold_ms + 50));
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kReduced);
  clock.Advance(std::chrono::milliseconds(options.step_down_hold_ms + 50));
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kFull);
}

TEST(OverloadControllerTest, HoldPeriodElapsesInVirtualTime) {
  // The hysteresis hold is pure elapsed-time logic; under an injected
  // clock a multi-second hold costs nothing and is exactly reproducible.
  ManualClock clock;
  OverloadControllerOptions options;
  options.step_down_hold_ms = 5000;
  options.clock = &clock;
  OverloadController controller(options);
  ASSERT_EQ(controller.Evaluate(1000, 1000), ServiceTier::kShed);
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kShed);
  clock.Advance(std::chrono::milliseconds(4999));
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kShed);
  clock.Advance(std::chrono::milliseconds(2));
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);
  // The step-down restarts the hold clock.
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);
  clock.Advance(std::chrono::milliseconds(5001));
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kReduced);
}

TEST(OverloadControllerTest, ForcedTierPinsTheLadder) {
  OverloadControllerOptions options;
  options.forced_tier = static_cast<int>(ServiceTier::kCacheOnly);
  OverloadController controller(options);
  EXPECT_EQ(controller.Evaluate(0, 1000), ServiceTier::kCacheOnly);
  EXPECT_EQ(controller.Evaluate(1000, 1000), ServiceTier::kCacheOnly);
  EXPECT_EQ(controller.tier_requests()[2], 2u);
}

TEST(OverloadControllerTest, TierNamesAreStable) {
  EXPECT_STREQ(TierName(ServiceTier::kFull), "full");
  EXPECT_STREQ(TierName(ServiceTier::kReduced), "reduced");
  EXPECT_STREQ(TierName(ServiceTier::kCacheOnly), "cache_only");
  EXPECT_STREQ(TierName(ServiceTier::kShed), "shed");
}

// ---- Engine integration: what each tier means for a request. ----

std::shared_ptr<const XCleanSuggester> BuildSuggester() {
  DblpGenOptions gen;
  gen.num_publications = 400;
  return std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
}

TEST(OverloadServingTest, SwapIndexResetsTheLatencySignal) {
  auto suggester = BuildSuggester();
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  serve::ServingEngine engine(suggester, options);

  // Accumulate a nonzero p95 estimate against the current index.
  for (int i = 0; i < 50; ++i) {
    serve::ServeResult r = engine.Suggest("informaton retreival");
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  ASSERT_GT(engine.Metrics().overload_p95_ms, 0.0);

  // Regression: the estimate characterizes the *old* index's query cost
  // and must not survive the hot swap as phantom pressure on the new one.
  engine.SwapIndex(suggester);
  EXPECT_EQ(engine.Metrics().overload_p95_ms, 0.0);
  EXPECT_EQ(engine.Metrics().snapshot_swaps, 1u);
}

TEST(OverloadServingTest, ShedTierAnswersUnavailable) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.overload.forced_tier = static_cast<int>(ServiceTier::kShed);
  serve::ServingEngine engine(BuildSuggester(), options);

  serve::ServeResult r = engine.Suggest("information retrieval");
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.tier, ServiceTier::kShed);
  EXPECT_TRUE(r.suggestions.empty());
  serve::MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.shed_overload, 1u);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.current_tier, static_cast<int>(ServiceTier::kShed));
  EXPECT_EQ(m.tier_requests[3], 1u);
  EXPECT_EQ(engine.current_tier(), ServiceTier::kShed);
}

TEST(OverloadServingTest, CacheOnlyTierServesHitsShedsMisses) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.overload.forced_tier = static_cast<int>(ServiceTier::kCacheOnly);
  serve::ServingEngine engine(BuildSuggester(), options);

  serve::ServeResult miss = engine.Suggest("information retrieval");
  EXPECT_EQ(miss.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.Metrics().shed_overload, 1u);
  EXPECT_EQ(engine.Metrics().completed, 0u);
}

TEST(OverloadServingTest, ReducedTierCapsTopKAndKeepsServing) {
  auto suggester = BuildSuggester();
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  options.overload.forced_tier = static_cast<int>(ServiceTier::kReduced);
  options.overload.reduced_tuning = QueryTuning{1, 256, 2};
  serve::ServingEngine engine(suggester, options);

  serve::ServeResult r = engine.Suggest("informaton retreival");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.tier, ServiceTier::kReduced);
  EXPECT_LE(r.suggestions.size(), 2u);

  // The reduced answer was cached under the tier-scoped key: serving the
  // same query again at the reduced tier hits.
  serve::ServeResult again = engine.Suggest("informaton retreival");
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.suggestions.size(), r.suggestions.size());
}

TEST(OverloadServingTest, ReducedResultsNeverPolluteTheFullTierCache) {
  auto suggester = BuildSuggester();
  const std::string query = "informaton retreival";

  // Full-quality reference answer.
  serve::EngineOptions full_options;
  full_options.pool.num_threads = 1;
  serve::ServingEngine full_engine(suggester, full_options);
  serve::ServeResult full = full_engine.Suggest(query);
  ASSERT_TRUE(full.status.ok());

  // A degraded engine serves a capped answer; the full engine's cache key
  // space is disjoint ("t1|" prefix), so a full-tier request never reads
  // a degraded entry. Verified indirectly: the reduced answer is at most
  // as long as the full one and re-serving at full quality elsewhere
  // still yields the reference list.
  serve::EngineOptions reduced_options = full_options;
  reduced_options.overload.forced_tier =
      static_cast<int>(ServiceTier::kReduced);
  reduced_options.overload.reduced_tuning = QueryTuning{1, 128, 1};
  serve::ServingEngine reduced_engine(suggester, reduced_options);
  serve::ServeResult reduced = reduced_engine.Suggest(query);
  ASSERT_TRUE(reduced.status.ok());
  EXPECT_LE(reduced.suggestions.size(), 1u);
  EXPECT_LE(reduced.suggestions.size(), full.suggestions.size());

  serve::ServeResult full_again = full_engine.Suggest(query);
  ASSERT_TRUE(full_again.status.ok());
  EXPECT_TRUE(full_again.cache_hit);
  EXPECT_EQ(full_again.suggestions.size(), full.suggestions.size());
}

TEST(OverloadServingTest, MetricsToStringIncludesTierState) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  serve::ServingEngine engine(BuildSuggester(), options);
  (void)engine.Suggest("information retrieval");
  std::string text = engine.Metrics().ToString();
  EXPECT_NE(text.find("tier=full"), std::string::npos) << text;
  EXPECT_NE(text.find("tiers="), std::string::npos) << text;
  EXPECT_NE(text.find("shed=0"), std::string::npos) << text;
}

}  // namespace
}  // namespace xclean
