#include "index/xml_index.h"

#include <gtest/gtest.h>

#include <map>

#include "xml/parser.h"

namespace xclean {
namespace {

std::unique_ptr<XmlIndex> BuildFrom(const char* xml,
                                    IndexOptions options = IndexOptions()) {
  Result<XmlTree> tree = ParseXmlString(xml);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return XmlIndex::Build(std::move(tree).value(), options);
}

constexpr char kSample[] =
    "<a>"
    "  <c><x>tree</x><x>trie icde</x></c>"
    "  <d><x>trie</x><x>icde icdt icde</x></d>"
    "</a>";

TEST(XmlIndexTest, VocabularyAndFrequencies) {
  auto index = BuildFrom(kSample);
  const Vocabulary& v = index->vocabulary();
  EXPECT_EQ(v.size(), 4u);  // tree, trie, icde, icdt
  TokenId tree = v.Find("tree");
  TokenId trie = v.Find("trie");
  TokenId icde = v.Find("icde");
  TokenId icdt = v.Find("icdt");
  ASSERT_NE(tree, kInvalidToken);
  ASSERT_NE(icdt, kInvalidToken);
  EXPECT_EQ(index->collection_freq(tree), 1u);
  EXPECT_EQ(index->collection_freq(trie), 2u);
  EXPECT_EQ(index->collection_freq(icde), 3u);
  EXPECT_EQ(index->collection_freq(icdt), 1u);
  EXPECT_EQ(index->total_tokens(), 7u);
  EXPECT_EQ(index->doc_freq(icde), 2u);  // two x nodes contain it
  EXPECT_EQ(index->text_node_count(), 4u);
}

TEST(XmlIndexTest, PostingsSortedWithTf) {
  auto index = BuildFrom(kSample);
  TokenId icde = index->vocabulary().Find("icde");
  const PostingList& list = index->postings(icde);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_LT(list[0].node, list[1].node);
  EXPECT_EQ(list[0].tf, 1u);
  EXPECT_EQ(list[1].tf, 2u);  // "icde icdt icde"
}

TEST(XmlIndexTest, NodeAndSubtreeTokenCounts) {
  auto index = BuildFrom(kSample);
  const XmlTree& t = index->tree();
  // Node layout: 0=a 1=c 2=x 3=x 4=d 5=x 6=x.
  EXPECT_EQ(index->node_token_count(2), 1u);
  EXPECT_EQ(index->node_token_count(3), 2u);
  EXPECT_EQ(index->node_token_count(6), 3u);
  EXPECT_EQ(index->node_token_count(0), 0u);
  EXPECT_EQ(index->subtree_token_count(1), 3u);  // c subtree
  EXPECT_EQ(index->subtree_token_count(4), 4u);  // d subtree
  EXPECT_EQ(index->subtree_token_count(0), 7u);
  EXPECT_EQ(index->subtree_token_count(2), 1u);
  (void)t;
}

TEST(XmlIndexTest, TypeListsCountDistinctNodesPerPath) {
  auto index = BuildFrom(kSample);
  const XmlTree& t = index->tree();
  TokenId trie = index->vocabulary().Find("trie");
  PathId root_path = t.FindPath("/a");
  PathId c_path = t.FindPath("/a/c");
  PathId cx_path = t.FindPath("/a/c/x");
  PathId d_path = t.FindPath("/a/d");
  std::map<PathId, uint32_t> freqs;
  for (const PathFreq& pf : index->type_index().list(trie)) {
    freqs[pf.path] = pf.freq;
  }
  EXPECT_EQ(freqs[root_path], 1u);
  EXPECT_EQ(freqs[c_path], 1u);
  EXPECT_EQ(freqs[cx_path], 1u);
  EXPECT_EQ(freqs[d_path], 1u);

  TokenId icde = index->vocabulary().Find("icde");
  freqs.clear();
  for (const PathFreq& pf : index->type_index().list(icde)) {
    freqs[pf.path] = pf.freq;
  }
  EXPECT_EQ(freqs[root_path], 1u);
  EXPECT_EQ(freqs[c_path], 1u);
  EXPECT_EQ(freqs[d_path], 1u);
  EXPECT_EQ(freqs[cx_path], 1u);
  EXPECT_EQ(freqs[t.FindPath("/a/d/x")], 1u);
}

TEST(XmlIndexTest, TypeListCountsMultipleNodesOfSamePath) {
  // trie appears under two different x nodes of the same path /a/c/x.
  auto index = BuildFrom("<a><c><x>trie</x><x>trie</x></c></a>");
  TokenId trie = index->vocabulary().Find("trie");
  const XmlTree& t = index->tree();
  PathId cx = t.FindPath("/a/c/x");
  for (const PathFreq& pf : index->type_index().list(trie)) {
    if (pf.path == cx) {
      EXPECT_EQ(pf.freq, 2u);
    }
    if (pf.path == t.FindPath("/a/c")) {
      EXPECT_EQ(pf.freq, 1u);
    }
  }
}

TEST(XmlIndexTest, TypeListDedupesMultipleOccurrencesInOneSubtree) {
  // Both x leaves contain icde: /a/c must count 1 (one c node), /a/c/x
  // counts 2.
  auto index = BuildFrom("<a><c><x>icde</x><x>icde</x></c></a>");
  TokenId icde = index->vocabulary().Find("icde");
  const XmlTree& t = index->tree();
  std::map<PathId, uint32_t> freqs;
  for (const PathFreq& pf : index->type_index().list(icde)) {
    freqs[pf.path] = pf.freq;
  }
  EXPECT_EQ(freqs[t.FindPath("/a")], 1u);
  EXPECT_EQ(freqs[t.FindPath("/a/c")], 1u);
  EXPECT_EQ(freqs[t.FindPath("/a/c/x")], 2u);
}

TEST(XmlIndexTest, BackgroundProbSumsToOne) {
  auto index = BuildFrom(kSample);
  double sum = 0.0;
  for (TokenId t = 0; t < index->vocabulary().size(); ++t) {
    sum += index->BackgroundProb(t);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(XmlIndexTest, FastSsBuiltOverVocabulary) {
  auto index = BuildFrom(kSample);
  auto matches = index->fastss().Find("tre", 1);
  // "tree" (1 del... ed("tre","tree")=1) and "trie"? ed("tre","trie")=1.
  EXPECT_EQ(matches.size(), 2u);
}

TEST(XmlIndexTest, StatsShape) {
  auto index = BuildFrom(kSample);
  IndexStats stats = index->stats();
  EXPECT_EQ(stats.node_count, 7u);
  EXPECT_EQ(stats.text_node_count, 4u);
  EXPECT_EQ(stats.token_occurrences, 7u);
  EXPECT_EQ(stats.vocabulary_size, 4u);
  EXPECT_EQ(stats.path_count, 5u);
  EXPECT_EQ(stats.max_depth, 3u);
  EXPECT_GT(stats.avg_depth, 1.0);
}

TEST(XmlIndexTest, TokenizerOptionsRespected) {
  IndexOptions options;
  options.tokenizer.min_token_length = 1;
  options.tokenizer.drop_stopwords = false;
  auto index = BuildFrom("<a><x>a the ox</x></a>", options);
  EXPECT_EQ(index->vocabulary().size(), 3u);
}

}  // namespace
}  // namespace xclean
