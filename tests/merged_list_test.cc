#include "index/merged_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace xclean {
namespace {

struct Flat {
  NodeId node;
  TokenId token;
  bool operator==(const Flat&) const = default;
};

MergedList Make(const std::vector<PostingList>& lists,
                std::vector<MergedList::Member>& members_out) {
  members_out.clear();
  std::vector<MergedList::Member> members;
  for (size_t i = 0; i < lists.size(); ++i) {
    members.push_back(
        MergedList::Member{static_cast<TokenId>(i), PostingCursor(lists[i])});
  }
  return MergedList(std::move(members));
}

std::vector<Flat> Drain(MergedList& merged) {
  std::vector<Flat> out;
  while (merged.cur_pos() != nullptr) {
    MergedList::Head h = merged.Next();
    out.push_back(Flat{h.node, h.token});
  }
  return out;
}

PostingList ListOf(std::vector<NodeId> nodes) {
  std::vector<Posting> postings;
  for (NodeId n : nodes) postings.push_back(Posting{n, 1});
  return PostingList(std::move(postings));
}

TEST(MergedListTest, MergesInDocumentOrder) {
  std::vector<PostingList> lists = {ListOf({1, 5}), ListOf({2, 3, 9}),
                                    ListOf({4})};
  std::vector<MergedList::Member> members;
  MergedList merged = Make(lists, members);
  std::vector<Flat> expected = {{1, 0}, {2, 1}, {3, 1},
                                {4, 2}, {5, 0}, {9, 1}};
  EXPECT_EQ(Drain(merged), expected);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.cur_pos(), nullptr);
}

TEST(MergedListTest, TiesOrderedByToken) {
  std::vector<PostingList> lists = {ListOf({7}), ListOf({7})};
  std::vector<MergedList::Member> members;
  MergedList merged = Make(lists, members);
  EXPECT_EQ(Drain(merged), (std::vector<Flat>{{7, 0}, {7, 1}}));
}

TEST(MergedListTest, SkipToDiscardsSmaller) {
  std::vector<PostingList> lists = {ListOf({1, 10, 20}), ListOf({2, 11})};
  std::vector<MergedList::Member> members;
  MergedList merged = Make(lists, members);
  const MergedList::Head* h = merged.SkipTo(10);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->node, 10u);
  EXPECT_EQ(Drain(merged), (std::vector<Flat>{{10, 0}, {11, 1}, {20, 0}}));
}

TEST(MergedListTest, SkipToBeyondExhausts) {
  std::vector<PostingList> lists = {ListOf({1, 2})};
  std::vector<MergedList::Member> members;
  MergedList merged = Make(lists, members);
  EXPECT_EQ(merged.SkipTo(100), nullptr);
  EXPECT_TRUE(merged.empty());
}

TEST(MergedListTest, EmptyMembers) {
  std::vector<PostingList> lists = {ListOf({}), ListOf({})};
  std::vector<MergedList::Member> members;
  MergedList merged = Make(lists, members);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.cur_pos(), nullptr);
}

TEST(MergedListTest, CarriesTfAndToken) {
  PostingList list(std::vector<Posting>{{3, 42}});
  std::vector<MergedList::Member> members;
  members.push_back(MergedList::Member{99, PostingCursor(list)});
  MergedList merged(std::move(members));
  ASSERT_NE(merged.cur_pos(), nullptr);
  EXPECT_EQ(merged.cur_pos()->tf, 42u);
  EXPECT_EQ(merged.cur_pos()->token, 99u);
}

/// Property: interleaving random SkipTo and Next equals the same operations
/// on an eagerly materialized merged vector.
TEST(MergedListTest, RandomOpsMatchFlatMerge) {
  Rng rng(55);
  for (int round = 0; round < 50; ++round) {
    size_t k = 1 + rng.Uniform(4);
    std::vector<PostingList> lists;
    std::vector<Flat> flat;
    for (size_t i = 0; i < k; ++i) {
      std::vector<NodeId> nodes;
      NodeId cur = 0;
      size_t n = rng.Uniform(50);
      for (size_t j = 0; j < n; ++j) {
        cur += 1 + static_cast<NodeId>(rng.Uniform(5));
        nodes.push_back(cur);
        flat.push_back(Flat{cur, static_cast<TokenId>(i)});
      }
      lists.push_back(ListOf(nodes));
    }
    std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
      return a.node < b.node || (a.node == b.node && a.token < b.token);
    });

    std::vector<MergedList::Member> members;
    MergedList merged = Make(lists, members);
    size_t pos = 0;
    for (int op = 0; op < 60; ++op) {
      if (rng.Bernoulli(0.3)) {
        NodeId target = static_cast<NodeId>(rng.Uniform(120));
        merged.SkipTo(target);
        while (pos < flat.size() && flat[pos].node < target) ++pos;
      } else if (merged.cur_pos() != nullptr) {
        MergedList::Head h = merged.Next();
        ASSERT_LT(pos, flat.size());
        ASSERT_EQ(h.node, flat[pos].node);
        ASSERT_EQ(h.token, flat[pos].token);
        ++pos;
      }
      if (merged.cur_pos() == nullptr) {
        ASSERT_EQ(pos, flat.size());
      } else {
        ASSERT_EQ(merged.cur_pos()->node, flat[pos].node);
        ASSERT_EQ(merged.cur_pos()->token, flat[pos].token);
      }
    }
  }
}

}  // namespace
}  // namespace xclean
