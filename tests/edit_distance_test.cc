#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace xclean {
namespace {

TEST(EditDistanceTest, KnownCases) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("insurance", "instance"), 2u);
  EXPECT_EQ(EditDistance("tree", "trie"), 1u);
  EXPECT_EQ(EditDistance("tree", "trees"), 1u);
  EXPECT_EQ(EditDistance("icdt", "icde"), 1u);
  EXPECT_EQ(EditDistance("hinrich", "hinrick"), 1u);
}

TEST(EditDistanceTest, BoundedAgreesWhenWithin) {
  EXPECT_EQ(EditDistanceBounded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(EditDistanceBounded("kitten", "sitting", 5), 3u);
  EXPECT_EQ(EditDistanceBounded("abc", "abc", 0), 0u);
}

TEST(EditDistanceTest, BoundedCapsWhenBeyond) {
  EXPECT_EQ(EditDistanceBounded("kitten", "sitting", 2), 3u);  // max_ed + 1
  EXPECT_EQ(EditDistanceBounded("abc", "xyz", 1), 2u);
  EXPECT_EQ(EditDistanceBounded("short", "muchlongerstring", 2), 3u);
}

TEST(EditDistanceTest, WithinPredicate) {
  EXPECT_TRUE(WithinEditDistance("tree", "trie", 1));
  EXPECT_FALSE(WithinEditDistance("tree", "icde", 2));
  EXPECT_TRUE(WithinEditDistance("same", "same", 0));
}

/// Property sweep: the banded bounded version must agree with the full DP
/// for every threshold, on random string pairs.
class EditDistancePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EditDistancePropertyTest, BoundedMatchesFullDp) {
  const uint32_t max_ed = GetParam();
  Rng rng(1000 + max_ed);
  for (int round = 0; round < 500; ++round) {
    auto random_string = [&](size_t max_len) {
      std::string s;
      size_t len = rng.Uniform(max_len + 1);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(4)));  // small sigma
      }
      return s;
    };
    std::string a = random_string(12);
    std::string b = random_string(12);
    uint32_t full = EditDistance(a, b);
    uint32_t bounded = EditDistanceBounded(a, b, max_ed);
    if (full <= max_ed) {
      EXPECT_EQ(bounded, full) << a << " vs " << b << " k=" << max_ed;
    } else {
      EXPECT_EQ(bounded, max_ed + 1) << a << " vs " << b << " k=" << max_ed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EditDistancePropertyTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 7u));

/// Metric properties on random strings: symmetry, identity, triangle
/// inequality.
TEST(EditDistanceTest, MetricProperties) {
  Rng rng(77);
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.Uniform(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    return s;
  };
  for (int round = 0; round < 300; ++round) {
    std::string a = random_string(8);
    std::string b = random_string(8);
    std::string c = random_string(8);
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_EQ(EditDistance(a, a), 0u);
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
    // Length difference is a lower bound; max length an upper bound.
    uint32_t d = EditDistance(a, b);
    EXPECT_GE(d, static_cast<uint32_t>(
                     a.size() > b.size() ? a.size() - b.size()
                                         : b.size() - a.size()));
    EXPECT_LE(d, static_cast<uint32_t>(std::max(a.size(), b.size())));
  }
}

}  // namespace
}  // namespace xclean
