#include "data/misspell.h"

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "text/edit_distance.h"

namespace xclean {
namespace {

TEST(MisspellTableTest, EveryPairIsActuallyDifferent) {
  for (const MisspellingPair& p : CommonMisspellings()) {
    EXPECT_NE(p.misspelling, p.correction);
    EXPECT_GE(EditDistance(p.misspelling, p.correction), 1u);
  }
}

TEST(MisspellTableTest, AllLowercaseAlpha) {
  for (const MisspellingPair& p : CommonMisspellings()) {
    for (char c : p.misspelling) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << p.misspelling;
    }
    for (char c : p.correction) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << p.correction;
    }
  }
}

TEST(MisspellTableTest, MisspellingsSurviveTokenizer) {
  for (const MisspellingPair& p : CommonMisspellings()) {
    EXPECT_GE(p.misspelling.size(), 3u) << p.misspelling;
  }
}

TEST(MisspellTableTest, EditDistancesSkewLargerThanOne) {
  // The paper relies on RULE errors being farther than single edits on
  // average; a solid fraction of the table must have distance >= 2.
  size_t total = 0, multi = 0;
  for (const MisspellingPair& p : CommonMisspellings()) {
    ++total;
    if (EditDistance(p.misspelling, p.correction) >= 2) ++multi;
  }
  EXPECT_GT(multi * 6, total);  // > 16%
}

TEST(MisspellTableTest, ReverseMapCoversTable) {
  const auto& by_correction = MisspellingsByCorrection();
  for (const MisspellingPair& p : CommonMisspellings()) {
    auto it = by_correction.find(std::string(p.correction));
    ASSERT_NE(it, by_correction.end());
    bool found = false;
    for (const std::string& m : it->second) {
      if (m == p.misspelling) found = true;
    }
    EXPECT_TRUE(found) << p.misspelling;
  }
}

TEST(MisspellTableTest, NoDuplicateMisspellings) {
  std::set<std::string_view> seen;
  for (const MisspellingPair& p : CommonMisspellings()) {
    EXPECT_TRUE(seen.insert(p.misspelling).second)
        << "duplicate misspelling: " << p.misspelling;
  }
}

TEST(RuleMisspellTest, ZeroEditsIsIdentity) {
  Rng rng(1);
  EXPECT_EQ(RuleMisspell("example", 0, rng), "example");
}

TEST(RuleMisspellTest, ProducesBoundedEdits) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    std::string out = RuleMisspell("experiment", 1, rng);
    EXPECT_LE(EditDistance("experiment", out), 2u)
        << out;  // one rule = at most one ins+del (transposition)
  }
}

TEST(RuleMisspellTest, UsuallyChangesTheWord) {
  Rng rng(3);
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    if (RuleMisspell("algorithm", 1, rng) != "algorithm") ++changed;
  }
  EXPECT_GT(changed, 150);
}

TEST(RuleMisspellTest, ShortWordsLeftAlone) {
  Rng rng(4);
  EXPECT_EQ(RuleMisspell("ab", 3, rng), "ab");
}

TEST(RuleMisspellTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(RuleMisspell("deterministic", 2, a),
              RuleMisspell("deterministic", 2, b));
  }
}

}  // namespace
}  // namespace xclean
