// Unit tests for the serving building blocks: latency histogram / metrics
// registry, sharded LRU suggestion cache, and the bounded thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "serve/metrics.h"
#include "serve/suggestion_cache.h"

namespace xclean::serve {
namespace {

std::vector<Suggestion> OneSuggestion(const std::string& word, double score) {
  Suggestion s;
  s.words = {word};
  s.score = score;
  return {s};
}

TEST(LatencyHistogramTest, QuantilesBracketSamples) {
  LatencyHistogram h;
  // 90 fast samples (~100us) and 10 slow ones (~50ms).
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(50000);
  EXPECT_EQ(h.count(), 100u);
  // p50 must land in the fast bucket: 100us rounds up to at most 128us.
  EXPECT_LE(h.QuantileMillis(0.50), 0.128 + 1e-9);
  // p99 must land in the slow bucket: >= 50ms sample, upper bound <= 2x.
  EXPECT_GE(h.QuantileMillis(0.99), 0.050);
  EXPECT_LE(h.QuantileMillis(0.99), 105.0);
  double mean = h.MeanMillis();
  EXPECT_NEAR(mean, (90 * 0.1 + 10 * 50.0) / 100.0, 1e-6);
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileMillis(0.99), 0.0);
  EXPECT_EQ(h.MeanMillis(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotAndDump) {
  MetricsRegistry m;
  m.IncrRequests();
  m.IncrRequests();
  m.IncrCompleted();
  m.IncrRejected();
  m.IncrDeadlineExceeded();
  m.IncrSwaps();
  m.RecordLatencyMicros(1000);
  MetricsSnapshot s = m.Snapshot(/*cache_hits=*/5, /*cache_misses=*/7,
                                 /*cache_evictions=*/2);
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.deadline_exceeded, 1u);
  EXPECT_EQ(s.snapshot_swaps, 1u);
  EXPECT_EQ(s.cache_hits, 5u);
  EXPECT_EQ(s.cache_misses, 7u);
  EXPECT_EQ(s.cache_evictions, 2u);
  EXPECT_EQ(s.latency_count, 1u);
  std::string dump = s.ToString();
  EXPECT_NE(dump.find("req=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("hit=5"), std::string::npos) << dump;
  EXPECT_NE(dump.find("p99="), std::string::npos) << dump;
}

TEST(SuggestionCacheTest, HitMissAndLruEviction) {
  CacheOptions options;
  options.capacity = 2;
  options.shards = 1;  // single shard so eviction order is deterministic
  SuggestionCache cache(options);

  std::vector<Suggestion> out;
  EXPECT_FALSE(cache.Get("a", &out));
  cache.Put("a", OneSuggestion("alpha", 1.0));
  cache.Put("b", OneSuggestion("beta", 2.0));
  ASSERT_TRUE(cache.Get("a", &out));  // refreshes "a"; "b" is now LRU
  EXPECT_EQ(out[0].words[0], "alpha");

  cache.Put("c", OneSuggestion("gamma", 3.0));  // evicts "b"
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));

  SuggestionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(SuggestionCacheTest, ZeroCapacityDisables) {
  CacheOptions options;
  options.capacity = 0;
  SuggestionCache cache(options);
  cache.Put("a", OneSuggestion("alpha", 1.0));
  std::vector<Suggestion> out;
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SuggestionCacheTest, PutRefreshReplacesValue) {
  SuggestionCache cache;
  cache.Put("k", OneSuggestion("old", 1.0));
  cache.Put("k", OneSuggestion("new", 2.0));
  std::vector<Suggestion> out;
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out[0].words[0], "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SuggestionCacheTest, ConcurrentMixedWorkloadIsConsistent) {
  CacheOptions options;
  options.capacity = 128;
  options.shards = 8;
  SuggestionCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string((t * 31 + i) % 200);
        std::vector<Suggestion> out;
        if (!cache.Get(key, &out)) {
          cache.Put(key, OneSuggestion(key, 1.0));
        } else {
          // A hit must return the value stored under that key.
          ASSERT_EQ(out[0].words[0], key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SuggestionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, cache.capacity());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPoolOptions options;
  options.num_threads = 4;
  ThreadPool pool(options);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&done] { done.fetch_add(1); }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, RejectsWhenQueueFull) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  ThreadPool pool(options);

  // Block the single worker so the queue can fill up.
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.TrySubmit([&release] {
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());
  // Wait until the worker has dequeued the blocker (queue drains to 0).
  while (pool.queue_depth() != 0) std::this_thread::yield();

  ASSERT_TRUE(pool.TrySubmit([] {}).ok());
  ASSERT_TRUE(pool.TrySubmit([] {}).ok());
  Status overflow = pool.TrySubmit([] {});
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);

  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPoolTest, ExpiredEntriesReleaseTheirQueueSlots) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  ThreadPool pool(options);

  // Block the single worker, then wait for the blocker to leave the queue.
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.TrySubmit([&release] {
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());
  while (pool.queue_depth() != 0) std::this_thread::yield();

  // Fill every slot with entries already past their deadline.
  auto expired = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  std::atomic<int> expired_cbs{0};
  std::atomic<int> dead_tasks_ran{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.TrySubmit(
                        [&dead_tasks_ran] { dead_tasks_ran.fetch_add(1); },
                        expired,
                        [&expired_cbs] { expired_cbs.fetch_add(1); })
                    .ok());
  }
  ASSERT_EQ(pool.queue_depth(), 2u);

  // The queue is nominally full, but both occupants are dead: a new
  // submission must sweep them out and take a freed slot instead of
  // being rejected. This is the slot-accounting regression — an expired
  // entry gives its slot back *before* its expiry callback runs.
  std::atomic<int> live_ran{0};
  ASSERT_TRUE(pool.TrySubmit([&live_ran] { live_ran.fetch_add(1); }).ok());
  EXPECT_EQ(pool.expired_evictions(), 2u);
  EXPECT_EQ(expired_cbs.load(), 2);

  release.store(true);
  pool.Shutdown();
  EXPECT_EQ(live_ran.load(), 1);
  // The dead entries' tasks must never have executed.
  EXPECT_EQ(dead_tasks_ran.load(), 0);
}

TEST(ThreadPoolTest, WorkerSideExpiryRunsCallbackNotTask) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.queue_capacity = 8;
  ThreadPool pool(options);

  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.TrySubmit([&release] {
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());
  while (pool.queue_depth() != 0) std::this_thread::yield();

  // Expires while waiting behind the blocker; the worker (not a sweep)
  // discovers it at pickup.
  std::atomic<int> ran{0};
  std::atomic<int> expired_cbs{0};
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); },
                             std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(1),
                             [&expired_cbs] { expired_cbs.fetch_add(1); })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.store(true);
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(expired_cbs.load(), 1);
  EXPECT_EQ(pool.expired_evictions(), 1u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1, .queue_capacity = 4});
  pool.Shutdown();
  Status s = pool.TrySubmit([] {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, ShutdownDrainsBacklog) {
  ThreadPoolOptions options;
  options.num_threads = 2;
  options.queue_capacity = 1000;
  ThreadPool pool(options);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pool
                    .TrySubmit([&done] {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(10));
                      done.fetch_add(1);
                    })
                    .ok());
  }
  pool.Shutdown();  // must run everything already accepted
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace xclean::serve
