#include <gtest/gtest.h>

#include <memory>

#include "core/naive.h"
#include "core/py08.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "data/inex_gen.h"
#include "data/workload.h"
#include "eval/experiment.h"

namespace xclean {
namespace {

/// End-to-end pipeline over both corpus families: generate, index, build
/// workloads, run every cleaner, and check the paper's headline orderings
/// at mini scale. (The bench binaries repeat this at full scale; this test
/// keeps the pipeline itself from rotting.)
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpGenOptions gen;
    // Large enough that the corpus carries rare near-miss tokens (content
    // typos) for PY08's bias to trip on — the mechanism behind Fig. 3.
    gen.num_publications = 6000;
    gen.seed = 101;
    dblp_ = XmlIndex::Build(GenerateDblp(gen)).release();

    InexGenOptions inex;
    inex.num_articles = 80;
    inex.vocabulary_target = 2500;
    inex.seed = 102;
    inex_ = XmlIndex::Build(GenerateInex(inex)).release();
  }
  static void TearDownTestSuite() {
    delete dblp_;
    delete inex_;
  }
  static const XmlIndex* dblp_;
  static const XmlIndex* inex_;
};

const XmlIndex* IntegrationTest::dblp_ = nullptr;
const XmlIndex* IntegrationTest::inex_ = nullptr;

TEST_F(IntegrationTest, XCleanRecoversRandErrorsOnBothCorpora) {
  for (const XmlIndex* index : {dblp_, inex_}) {
    WorkloadOptions wo;
    wo.num_queries = 25;
    wo.seed = 1;
    std::vector<Query> initial = SampleInitialQueries(*index, wo);
    QuerySet set =
        MakeQuerySet("RAND", *index, initial, Perturbation::kRand, wo);
    XCleanOptions options;
    options.gamma = 1000;
    XClean cleaner(*index, options);
    ExperimentResult r = RunExperiment(cleaner, set);
    EXPECT_GT(r.mrr, 0.5) << "corpus vocab "
                          << index->stats().vocabulary_size;
  }
}

TEST_F(IntegrationTest, XCleanBeatsPy08OnDirtyQueries) {
  WorkloadOptions wo;
  wo.num_queries = 30;
  wo.seed = 2;
  std::vector<Query> initial = SampleInitialQueries(*dblp_, wo);
  QuerySet set =
      MakeQuerySet("RAND", *dblp_, initial, Perturbation::kRand, wo);

  XCleanOptions xo;
  xo.gamma = 1000;
  XClean xclean(*dblp_, xo);
  Py08Cleaner py08(*dblp_, Py08Options{});

  ExperimentResult rx = RunExperiment(xclean, set);
  ExperimentResult rp = RunExperiment(py08, set);
  EXPECT_GT(rx.mrr, rp.mrr);
}

TEST_F(IntegrationTest, CleanQueriesMostlyKeptByXClean) {
  WorkloadOptions wo;
  wo.num_queries = 25;
  wo.seed = 3;
  std::vector<Query> initial = SampleInitialQueries(*dblp_, wo);
  QuerySet set =
      MakeQuerySet("CLEAN", *dblp_, initial, Perturbation::kClean, wo);
  XCleanOptions options;
  options.gamma = 1000;
  XClean cleaner(*dblp_, options);
  ExperimentResult r = RunExperiment(cleaner, set);
  EXPECT_GT(r.mrr, 0.6);
}

TEST_F(IntegrationTest, SeProxyPerfectOnCleanWorseOnRand) {
  WorkloadOptions wo;
  wo.num_queries = 30;
  wo.seed = 4;
  std::vector<Query> initial = SampleInitialQueries(*dblp_, wo);
  auto proxy = BuildSeProxy(*dblp_, initial, 99);

  QuerySet clean =
      MakeQuerySet("CLEAN", *dblp_, initial, Perturbation::kClean, wo);
  QuerySet rand =
      MakeQuerySet("RAND", *dblp_, initial, Perturbation::kRand, wo);
  ExperimentResult rc = RunExperiment(*proxy, clean);
  ExperimentResult rr = RunExperiment(*proxy, rand);
  EXPECT_GT(rc.mrr, 0.95);
  // Never better on dirty queries than on clean ones (strict separation
  // appears at bench scale; at this corpus size the proxy can ace a small
  // RAND set).
  EXPECT_LE(rr.mrr, rc.mrr);
}

TEST_F(IntegrationTest, EverySuggestionHasResults) {
  WorkloadOptions wo;
  wo.num_queries = 15;
  wo.seed = 5;
  std::vector<Query> initial = SampleInitialQueries(*inex_, wo);
  QuerySet set =
      MakeQuerySet("RULE", *inex_, initial, Perturbation::kRule, wo);
  XCleanOptions options;
  options.gamma = 1000;
  XClean cleaner(*inex_, options);
  for (const EvalQuery& eq : set.queries) {
    for (const Suggestion& s : cleaner.Suggest(eq.dirty)) {
      EXPECT_GT(s.entity_count, 0u) << s.ToString();
    }
  }
}

TEST_F(IntegrationTest, GammaPruningBarelyHurtsQuality) {
  WorkloadOptions wo;
  wo.num_queries = 20;
  wo.seed = 6;
  std::vector<Query> initial = SampleInitialQueries(*dblp_, wo);
  QuerySet set =
      MakeQuerySet("RAND", *dblp_, initial, Perturbation::kRand, wo);
  XCleanOptions exact;
  exact.gamma = 0;
  XCleanOptions bounded;
  bounded.gamma = 1000;
  XClean a(*dblp_, exact);
  XClean b(*dblp_, bounded);
  ExperimentResult ra = RunExperiment(a, set);
  ExperimentResult rb = RunExperiment(b, set);
  EXPECT_NEAR(ra.mrr, rb.mrr, 0.1);
}

}  // namespace
}  // namespace xclean
