#include "text/fastss.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "text/edit_distance.h"

namespace xclean {
namespace {

std::vector<std::string> BruteForce(const std::vector<std::string>& words,
                                    const std::string& query,
                                    uint32_t max_ed) {
  std::vector<std::string> out;
  for (const std::string& w : words) {
    if (EditDistance(query, w) <= max_ed) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> IndexFind(const FastSsIndex& index,
                                   const std::string& query,
                                   uint32_t max_ed) {
  std::vector<std::string> out;
  for (const FastSsIndex::Match& m : index.Find(query, max_ed)) {
    out.push_back(index.word(m.word_id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FastSsTest, DeletionNeighborhoodSizeAndContent) {
  auto n0 = FastSsIndex::DeletionNeighborhood("abc", 0);
  EXPECT_EQ(n0, (std::vector<std::string>{"abc"}));

  auto n1 = FastSsIndex::DeletionNeighborhood("abc", 1);
  std::set<std::string> s1(n1.begin(), n1.end());
  EXPECT_EQ(s1, (std::set<std::string>{"abc", "bc", "ac", "ab"}));

  // Repeated characters dedupe: "aab" - 1 deletion -> {aab, ab, aa}.
  auto n2 = FastSsIndex::DeletionNeighborhood("aab", 1);
  std::set<std::string> s2(n2.begin(), n2.end());
  EXPECT_EQ(s2, (std::set<std::string>{"aab", "ab", "aa"}));
}

TEST(FastSsTest, ExactMatchAtZero) {
  FastSsIndex index(FastSsIndex::Options{2, 13});
  index.Build({"tree", "trie", "trees"});
  auto matches = index.Find("tree", 0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(index.word(matches[0].word_id), "tree");
  EXPECT_EQ(matches[0].distance, 0u);
}

TEST(FastSsTest, PaperExampleVariants) {
  FastSsIndex index(FastSsIndex::Options{1, 13});
  index.Build({"tree", "trees", "trie", "icde", "icdt", "forest"});
  EXPECT_EQ(IndexFind(index, "tree", 1),
            (std::vector<std::string>{"tree", "trees", "trie"}));
  EXPECT_EQ(IndexFind(index, "icdt", 1),
            (std::vector<std::string>{"icde", "icdt"}));
}

TEST(FastSsTest, ReportsCorrectDistances) {
  FastSsIndex index(FastSsIndex::Options{2, 13});
  index.Build({"health", "wealth", "stealth"});
  for (const auto& m : index.Find("health", 2)) {
    EXPECT_EQ(m.distance, EditDistance("health", index.word(m.word_id)));
  }
}

TEST(FastSsTest, EmptyIndex) {
  FastSsIndex index(FastSsIndex::Options{2, 13});
  index.Build({});
  EXPECT_TRUE(index.Find("anything", 2).empty());
}

/// Property: Find == brute force, across index radii and partition
/// thresholds (small thresholds force the partitioned code path).
struct FastSsParam {
  uint32_t max_ed;
  size_t partition_min_length;
};

class FastSsPropertyTest : public ::testing::TestWithParam<FastSsParam> {};

TEST_P(FastSsPropertyTest, MatchesBruteForce) {
  const FastSsParam param = GetParam();
  Rng rng(500 + param.max_ed * 10 + param.partition_min_length);

  auto random_word = [&](size_t min_len, size_t max_len) {
    std::string s;
    size_t len = min_len + rng.Uniform(max_len - min_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.Uniform(5)));
    }
    return s;
  };

  std::set<std::string> vocab_set;
  while (vocab_set.size() < 300) vocab_set.insert(random_word(3, 18));
  std::vector<std::string> vocab(vocab_set.begin(), vocab_set.end());

  FastSsIndex index(
      FastSsIndex::Options{param.max_ed, param.partition_min_length});
  index.Build(vocab);

  for (int q = 0; q < 100; ++q) {
    std::string query = random_word(2, 20);
    for (uint32_t ed = 0; ed <= param.max_ed; ++ed) {
      EXPECT_EQ(IndexFind(index, query, ed), BruteForce(vocab, query, ed))
          << "query=" << query << " ed=" << ed
          << " k=" << param.max_ed << " part=" << param.partition_min_length;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiiAndPartitions, FastSsPropertyTest,
    ::testing::Values(FastSsParam{1, 13}, FastSsParam{2, 13},
                      FastSsParam{2, 6}, FastSsParam{3, 9},
                      FastSsParam{3, 100}));

TEST(FastSsTest, PartitionedUsesFewerPostingsForLongWords) {
  std::vector<std::string> long_words;
  Rng rng(4242);
  for (int i = 0; i < 50; ++i) {
    std::string w;
    for (int j = 0; j < 16; ++j) {
      w.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    long_words.push_back(w);
  }
  FastSsIndex full(FastSsIndex::Options{3, 100});
  full.Build(long_words);
  FastSsIndex partitioned(FastSsIndex::Options{3, 9});
  partitioned.Build(long_words);
  // Full Del_3 of a 16-char word is ~C(16,3) entries; two 1-deletion halves
  // are ~18. The space claim of Sec. V-A in action:
  EXPECT_LT(partitioned.posting_count() * 10, full.posting_count());
}

}  // namespace
}  // namespace xclean
