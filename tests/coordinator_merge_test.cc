// Edge-case coverage for Coordinator::Merge, the pure gather half of
// scatter-gather: duplicate legs (Merge is a plain fold over the outcome
// vector — deduplication is the routing layer's job), legs with empty
// partials, and normalizer renormalisation when a candidate's entity
// denominator is zero (an all-zero LCA total, or a node type whose global
// node count is zero) — scores must come out finite zero, never inf/nan.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/accumulator.h"
#include "delta/layer.h"
#include "delta/merged_stats.h"
#include "index/xml_index.h"
#include "shard/coordinator.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"
#include "xml/parser.h"

namespace xclean::shardtest {
namespace {

using shard::BuildShardedCorpus;
using shard::Coordinator;
using shard::CoordinatorOptions;
using shard::CoordinatorResult;
using shard::ShardedCorpus;
using shard::ShardedCorpusOptions;
using shard::ShardOutcome;
using shard::ShardOutcomeKind;
using shard::ShardServer;

constexpr uint64_t kGeneration = 17;

XCleanOptions MergeOptions(Semantics semantics) {
  XCleanOptions options;
  options.gamma = 0;
  options.semantics = semantics;
  options.top_k = 50;
  return options;
}

CoordinatorOptions MergeCoordinatorOptions() {
  CoordinatorOptions copts;
  copts.top_k = 50;
  return copts;
}

ShardedCorpus BuildCorpus(Semantics semantics, size_t num_shards) {
  ShardedCorpusOptions sopts;
  sopts.num_shards = num_shards;
  sopts.xclean = MergeOptions(semantics);
  Result<ShardedCorpus> corpus = BuildShardedCorpus(
      RandomCorpusTree(ShardBaseSeed() + 901), sopts, kGeneration);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

Query CorpusQuery() {
  // A deterministic dirty query over the same corpus seed.
  std::unique_ptr<XmlIndex> index =
      XmlIndex::Build(RandomCorpusTree(ShardBaseSeed() + 901));
  std::vector<Query> queries = DirtyQueries(*index, ShardBaseSeed() + 901);
  EXPECT_FALSE(queries.empty());
  return queries[1];  // the RAND-perturbed variant of the first clean query
}

std::vector<ShardOutcome> HealthyOutcomes(const ShardedCorpus& corpus,
                                          const Query& query) {
  std::vector<ShardOutcome> outcomes;
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    ShardServer server(s, corpus.engine, kGeneration);
    shard::ShardRequest request;
    request.query = query;
    request.expected_generation = kGeneration;
    outcomes.push_back({ShardOutcomeKind::kOk, server.Evaluate(request)});
  }
  return outcomes;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& w : words) {
    if (!out.empty()) out += " ";
    out += w;
  }
  return out;
}

const Suggestion* FindByWords(const std::vector<Suggestion>& suggestions,
                              const std::vector<std::string>& words) {
  for (const Suggestion& s : suggestions) {
    if (s.words == words) return &s;
  }
  return nullptr;
}

// Merge is a pure additive fold: the same leg appearing at two positions
// of the outcome vector contributes twice — entity counts and (node-type
// semantics, global normalizer) scores double. This is deliberate: Merge
// trusts the routing layer (ReplicaSet) to deliver exactly one response
// per shard, and stays a pure function of the vector it is handed.
TEST(CoordinatorMergeTest, DuplicateGenerationLegsAddTwice) {
  const ShardedCorpus corpus = BuildCorpus(Semantics::kNodeType, 2);
  const Query query = CorpusQuery();
  const std::vector<ShardOutcome> outcomes = HealthyOutcomes(corpus, query);

  const XCleanOptions xclean = MergeOptions(Semantics::kNodeType);
  const CoordinatorOptions copts = MergeCoordinatorOptions();
  const CoordinatorResult single = Coordinator::Merge(
      *corpus.stats, xclean, copts, kGeneration, {outcomes[0]});
  ASSERT_TRUE(single.status.ok());
  ASSERT_FALSE(single.suggestions.empty());

  const CoordinatorResult doubled = Coordinator::Merge(
      *corpus.stats, xclean, copts, kGeneration, {outcomes[0], outcomes[0]});
  ASSERT_TRUE(doubled.status.ok());
  EXPECT_EQ(doubled.shards_ok, 2u);
  EXPECT_FALSE(doubled.truncated);
  for (const Suggestion& want : single.suggestions) {
    const Suggestion* got = FindByWords(doubled.suggestions, want.words);
    ASSERT_NE(got, nullptr) << JoinWords(want.words);
    EXPECT_EQ(got->entity_count, 2 * want.entity_count);
    EXPECT_NEAR(got->score, 2.0 * want.score,
                1e-12 * (1.0 + std::abs(want.score)));
  }
}

// A leg that answered cleanly but found nothing (its shard simply holds no
// matching entities) is a healthy contribution of zero mass: it counts
// shards_ok, leaves truncated false, and changes no byte of the ranking.
TEST(CoordinatorMergeTest, EmptyPartialLegsMergeCleanly) {
  const ShardedCorpus corpus = BuildCorpus(Semantics::kSlca, 2);
  const Query query = CorpusQuery();
  std::vector<ShardOutcome> outcomes = HealthyOutcomes(corpus, query);

  const XCleanOptions xclean = MergeOptions(Semantics::kSlca);
  const CoordinatorOptions copts = MergeCoordinatorOptions();
  const CoordinatorResult base = Coordinator::Merge(
      *corpus.stats, xclean, copts, kGeneration, outcomes);
  ASSERT_TRUE(base.status.ok());

  ShardOutcome empty;
  empty.kind = ShardOutcomeKind::kOk;
  empty.response.status = Status::Ok();
  empty.response.shard_id = 2;
  empty.response.generation = kGeneration;
  outcomes.push_back(std::move(empty));

  const CoordinatorResult with_empty = Coordinator::Merge(
      *corpus.stats, xclean, copts, kGeneration, outcomes);
  ASSERT_TRUE(with_empty.status.ok());
  EXPECT_EQ(with_empty.shards_ok, base.shards_ok + 1);
  EXPECT_FALSE(with_empty.truncated);
  ExpectSameSuggestions(with_empty.suggestions, base.suggestions,
                        /*tolerance=*/0.0, "empty leg appended");

  // All-empty vector: a well-formed nothing, not an error. Shard ids must
  // be in range of the legs handed in (the wire-hardening check drops
  // responses claiming a shard the fan-out never asked) — so the two empty
  // legs are restamped 0 and 1.
  ShardOutcome empty0 = outcomes.back();
  empty0.response.shard_id = 0;
  ShardOutcome empty1 = outcomes.back();
  empty1.response.shard_id = 1;
  const CoordinatorResult nothing = Coordinator::Merge(
      *corpus.stats, xclean, copts, kGeneration, {empty0, empty1});
  ASSERT_TRUE(nothing.status.ok());
  EXPECT_TRUE(nothing.suggestions.empty());
  EXPECT_EQ(nothing.shards_ok, 2u);
}

// SLCA/ELCA normalizers are summed across shards; if every shard reports
// zero (all witnessing LCAs died behind tombstones between statistics
// broadcast and evaluation), the score must renormalise to finite zero.
TEST(CoordinatorMergeTest, ZeroLcaTotalRenormalisesToFiniteZero) {
  const ShardedCorpus corpus = BuildCorpus(Semantics::kElca, 2);
  const Query query = CorpusQuery();
  std::vector<ShardOutcome> outcomes = HealthyOutcomes(corpus, query);
  for (ShardOutcome& outcome : outcomes) {
    for (PartialCandidate& partial : outcome.response.partials) {
      partial.lca_total = 0;
    }
  }
  const CoordinatorResult result = Coordinator::Merge(
      *corpus.stats, MergeOptions(Semantics::kElca),
      MergeCoordinatorOptions(), kGeneration, outcomes);
  ASSERT_TRUE(result.status.ok());
  ASSERT_FALSE(result.suggestions.empty());
  for (const Suggestion& s : result.suggestions) {
    EXPECT_TRUE(std::isfinite(s.score)) << JoinWords(s.words);
    EXPECT_EQ(s.score, 0.0) << JoinWords(s.words);
  }
}

// Node-type semantics divide by the *global* path node count. A global
// path with zero count survives in the statistics when a later layer's
// root label diverges from the base's: the root path is interned so the
// table stays closed under parents, but later-layer roots are never
// counted (they fold into the one joined root). A candidate typed at such
// a path must score finite zero, not divide into inf/nan.
TEST(CoordinatorMergeTest, ZeroNodeCountTypeRenormalisesToFiniteZero) {
  Result<XmlTree> base_tree = ParseXmlString(
      "<dblp>"
      "<article><title>keyword search</title></article>"
      "<book><title>database systems</title></book>"
      "</dblp>");
  ASSERT_TRUE(base_tree.ok()) << base_tree.status().ToString();
  Result<XmlTree> delta_tree = ParseXmlString(
      "<addendum>"
      "<article><title>spelling suggestions</title></article>"
      "</addendum>");
  ASSERT_TRUE(delta_tree.ok()) << delta_tree.status().ToString();

  delta::LayerSet set;
  set.layers.push_back({XmlIndex::Build(std::move(base_tree).value()), {}});
  set.layers.push_back({XmlIndex::Build(std::move(delta_tree).value()), {}});
  std::shared_ptr<const delta::MergedStats> stats =
      delta::MergedStats::Build(set, MergeOptions(Semantics::kNodeType));

  PathId dead_path = XmlTree::kInvalidPath;
  for (PathId p = 0; p < stats->path_count(); ++p) {
    if (stats->path_node_count(p) == 0) {
      dead_path = p;
      break;
    }
  }
  ASSERT_NE(dead_path, XmlTree::kInvalidPath)
      << "the uncounted <addendum> root path should have zero node count";

  ShardOutcome outcome;
  outcome.kind = ShardOutcomeKind::kOk;
  outcome.response.status = Status::Ok();
  outcome.response.generation = kGeneration;
  PartialCandidate partial;
  partial.tokens = {TokenId{0}};
  partial.error_weight = 1.0;
  partial.sum = 0.5;
  partial.entity_count = 1;
  partial.result_type = dead_path;
  outcome.response.partials.push_back(std::move(partial));

  const CoordinatorResult result = Coordinator::Merge(
      *stats, MergeOptions(Semantics::kNodeType), MergeCoordinatorOptions(),
      kGeneration, {outcome});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.suggestions.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.suggestions[0].score));
  EXPECT_EQ(result.suggestions[0].score, 0.0);
  EXPECT_EQ(result.suggestions[0].entity_count, 1u);
}

// ---------------------------------------------------------------------------
// Wire hardening: with a real RPC transport behind ShardBackend, a
// response is untrusted bytes. Checksums catch random corruption, but a
// buggy or hostile shard can emit structurally valid nonsense; Merge must
// drop such responses wholesale (failed leg), never fold them in.
// ---------------------------------------------------------------------------

/// Runs Merge over healthy outcomes with one response mutated by `poison`,
/// and asserts the poisoned leg was dropped while the rest merged.
template <typename Poison>
void ExpectPoisonedLegDropped(Poison poison, const char* what) {
  const ShardedCorpus corpus = BuildCorpus(Semantics::kNodeType, 3);
  const Query query = CorpusQuery();
  std::vector<ShardOutcome> outcomes = HealthyOutcomes(corpus, query);
  ASSERT_GE(outcomes.size(), 2u);
  ASSERT_FALSE(outcomes[1].response.partials.empty())
      << "query matched nothing; the poison has no carrier";
  poison(outcomes[1].response);

  const CoordinatorResult result = Coordinator::Merge(
      *corpus.stats, MergeOptions(Semantics::kNodeType),
      MergeCoordinatorOptions(), kGeneration, outcomes);
  ASSERT_TRUE(result.status.ok()) << what;
  EXPECT_EQ(result.shards_failed, 1u) << what;
  EXPECT_EQ(result.shards_ok, outcomes.size() - 1) << what;
  EXPECT_TRUE(result.truncated) << what;
  for (const Suggestion& s : result.suggestions) {
    EXPECT_TRUE(std::isfinite(s.score)) << what << ": " << JoinWords(s.words);
    EXPECT_GE(s.score, 0.0) << what << ": " << JoinWords(s.words);
  }
}

TEST(CoordinatorMergeTest, NanErrorWeightLegIsDropped) {
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) {
        r.partials[0].error_weight = std::nan("");
      },
      "NaN error_weight");
}

TEST(CoordinatorMergeTest, InfiniteSumLegIsDropped) {
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) {
        r.partials[0].sum = std::numeric_limits<double>::infinity();
      },
      "infinite sum");
}

TEST(CoordinatorMergeTest, NegativeMassLegIsDropped) {
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) { r.partials[0].error_weight = -0.25; },
      "negative error_weight");
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) { r.partials[0].sum = -1e-9; },
      "negative sum");
}

TEST(CoordinatorMergeTest, EmptyTokenKeyLegIsDropped) {
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) { r.partials[0].tokens.clear(); },
      "empty token key");
}

TEST(CoordinatorMergeTest, OutOfRangeShardIdLegIsDropped) {
  ExpectPoisonedLegDropped(
      [](shard::ShardResponse& r) { r.shard_id = 1000; },
      "out-of-range shard id");
}

// A malformed response must not poison the merged scores even when every
// OTHER leg is healthy: the merged ranking over the surviving legs is the
// same as merging the survivors alone.
TEST(CoordinatorMergeTest, DroppedPoisonLeavesSurvivorsBitIdentical) {
  const ShardedCorpus corpus = BuildCorpus(Semantics::kNodeType, 3);
  const Query query = CorpusQuery();
  const std::vector<ShardOutcome> healthy = HealthyOutcomes(corpus, query);

  std::vector<ShardOutcome> poisoned = healthy;
  ASSERT_FALSE(poisoned[0].response.partials.empty());
  poisoned[0].response.partials[0].sum =
      -std::numeric_limits<double>::infinity();

  std::vector<ShardOutcome> survivors(healthy.begin() + 1, healthy.end());
  // Shard ids must stay in range of the outcome vector handed to Merge.
  std::vector<ShardOutcome> survivors_padded = poisoned;

  const CoordinatorResult with_poison = Coordinator::Merge(
      *corpus.stats, MergeOptions(Semantics::kNodeType),
      MergeCoordinatorOptions(), kGeneration, survivors_padded);
  std::vector<ShardOutcome> only_survivors = healthy;
  only_survivors[0].kind = ShardOutcomeKind::kError;
  only_survivors[0].response = shard::ShardResponse{};
  only_survivors[0].response.status = Status::Unavailable("dropped");
  const CoordinatorResult without = Coordinator::Merge(
      *corpus.stats, MergeOptions(Semantics::kNodeType),
      MergeCoordinatorOptions(), kGeneration, only_survivors);

  ASSERT_EQ(with_poison.suggestions.size(), without.suggestions.size());
  for (size_t i = 0; i < without.suggestions.size(); ++i) {
    EXPECT_EQ(with_poison.suggestions[i].words, without.suggestions[i].words);
    EXPECT_EQ(with_poison.suggestions[i].score, without.suggestions[i].score)
        << "rank " << i;
  }
}

}  // namespace
}  // namespace xclean::shardtest
