#include "xml/dewey.h"

#include <gtest/gtest.h>

#include <vector>

namespace xclean {
namespace {

std::vector<uint32_t> D(std::initializer_list<uint32_t> vals) {
  return std::vector<uint32_t>(vals);
}

TEST(DeweyTest, CompareDocumentOrder) {
  auto a = D({1, 2});
  auto b = D({1, 3});
  EXPECT_LT(CompareDewey(a, b), 0);
  EXPECT_GT(CompareDewey(b, a), 0);
  EXPECT_EQ(CompareDewey(a, a), 0);
}

TEST(DeweyTest, AncestorPrecedesDescendant) {
  auto parent = D({1, 2});
  auto child = D({1, 2, 1});
  EXPECT_LT(CompareDewey(parent, child), 0);
}

TEST(DeweyTest, IsAncestorStrict) {
  auto a = D({1, 2});
  auto b = D({1, 2, 3});
  EXPECT_TRUE(IsDeweyAncestor(a, b));
  EXPECT_FALSE(IsDeweyAncestor(b, a));
  EXPECT_FALSE(IsDeweyAncestor(a, a));
  EXPECT_FALSE(IsDeweyAncestor(D({1, 3}), b));
}

TEST(DeweyTest, IsAncestorOrSelf) {
  auto a = D({1, 2});
  EXPECT_TRUE(IsDeweyAncestorOrSelf(a, a));
  EXPECT_TRUE(IsDeweyAncestorOrSelf(a, D({1, 2, 9})));
  EXPECT_FALSE(IsDeweyAncestorOrSelf(D({1, 2, 9}), a));
}

TEST(DeweyTest, CommonPrefix) {
  EXPECT_EQ(DeweyCommonPrefix(D({1, 2, 3}), D({1, 2, 7})), 2u);
  EXPECT_EQ(DeweyCommonPrefix(D({1}), D({1, 5})), 1u);
  EXPECT_EQ(DeweyCommonPrefix(D({1, 2}), D({1, 2})), 2u);
  EXPECT_EQ(DeweyCommonPrefix(D({2}), D({3})), 0u);
}

TEST(DeweyTest, ToStringDotted) {
  EXPECT_EQ(DeweyToString(D({1, 2, 3})), "1.2.3");
  EXPECT_EQ(DeweyToString(D({1})), "1");
  EXPECT_EQ(DeweyToString(DeweyView{}), "");
}

TEST(DeweyTest, FromStringRoundTrip) {
  auto codes = {D({1}), D({1, 2}), D({1, 20, 300})};
  for (const auto& code : codes) {
    EXPECT_EQ(DeweyFromString(DeweyToString(code)), code);
  }
}

TEST(DeweyTest, FromStringRejectsMalformed) {
  EXPECT_TRUE(DeweyFromString("1..2").empty());
  EXPECT_TRUE(DeweyFromString("1.a").empty());
  EXPECT_TRUE(DeweyFromString(".1").empty());
  EXPECT_TRUE(DeweyFromString("99999999999").empty());  // > uint32
  EXPECT_TRUE(DeweyFromString("").empty());
  // The full malformed-input contract: trailing separators, signs,
  // whitespace and embedded garbage all reject — never a partial parse.
  EXPECT_TRUE(DeweyFromString("1.").empty());
  EXPECT_TRUE(DeweyFromString(".").empty());
  EXPECT_TRUE(DeweyFromString("+1").empty());
  EXPECT_TRUE(DeweyFromString("-1").empty());
  EXPECT_TRUE(DeweyFromString(" 1").empty());
  EXPECT_TRUE(DeweyFromString("1 ").empty());
  EXPECT_TRUE(DeweyFromString("1. 2").empty());
  EXPECT_TRUE(DeweyFromString("1.2x").empty());
  EXPECT_TRUE(DeweyFromString("0x1").empty());
}

TEST(DeweyTest, FromStringComponentBoundaries) {
  // Largest representable component round-trips; one past it rejects
  // outright instead of wrapping.
  EXPECT_EQ(DeweyFromString("4294967295"), D({4294967295u}));
  EXPECT_EQ(DeweyFromString("1.4294967295.2"), D({1, 4294967295u, 2}));
  EXPECT_TRUE(DeweyFromString("4294967296").empty());
  EXPECT_TRUE(DeweyFromString("1.4294967296").empty());
}

TEST(DeweyTest, MalformedPathIsDistinguishableFromRoot) {
  // A malformed path parses to the empty vector; the root parses to {1}.
  // The two must never be conflated: empty compares before everything,
  // renders as "", and is an ancestor of everything only vacuously.
  EXPECT_EQ(DeweyFromString("1"), D({1}));
  EXPECT_NE(DeweyFromString("1"), DeweyFromString("1.a"));
  EXPECT_EQ(DeweyToString(DeweyFromString("bogus")), "");
  EXPECT_LT(CompareDewey(DeweyFromString("bogus"), D({1})), 0);
}

}  // namespace
}  // namespace xclean
