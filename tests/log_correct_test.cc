#include "core/log_correct.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace xclean {
namespace {

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

LogCorrector BuildCorrector() {
  LogCorrector c;
  c.AddLogQuery({"great", "barrier", "reef"}, 500);
  c.AddLogQuery({"health", "insurance"}, 900);
  c.AddLogQuery({"instance", "segmentation"}, 3);
  c.AddRewrite("gerat", "great");
  c.Freeze();
  return c;
}

TEST(LogCorrectorTest, KnownWordsPassThrough) {
  LogCorrector c = BuildCorrector();
  auto s = c.Suggest(Q({"great", "barrier", "reef"}));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words,
            (std::vector<std::string>{"great", "barrier", "reef"}));
}

TEST(LogCorrectorTest, RewriteTableFires) {
  LogCorrector c = BuildCorrector();
  auto s = c.Suggest(Q({"gerat", "barrier", "reef"}));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words,
            (std::vector<std::string>{"great", "barrier", "reef"}));
}

TEST(LogCorrectorTest, EditFallbackUsed) {
  LogCorrector c = BuildCorrector();
  auto s = c.Suggest(Q({"insurancx"}));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"insurance"}));
}

TEST(LogCorrectorTest, PopularityBiasPicksFrequentWord) {
  LogCorrector c;
  // "baker" is hugely popular, "bakes" rare; "bakus" is ed 1 from the rare
  // word but ed 2 from the popular one — popularity wins anyway under the
  // popularity-first policy (the bias the paper describes).
  c.AddLogQuery({"baker"}, 1000);
  c.AddLogQuery({"bakes"}, 2);
  c.Freeze();
  auto s = c.Suggest(Q({"bakus"}));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"baker"}));
}

TEST(LogCorrectorTest, UnknownUnmatchableWordMeansNoSuggestion) {
  LogCorrector c = BuildCorrector();
  EXPECT_TRUE(c.Suggest(Q({"zzzzzzzzzz"})).empty());
  EXPECT_TRUE(c.Suggest(Q({})).empty());
}

TEST(LogCorrectorTest, MixedKnownAndUnknown) {
  LogCorrector c = BuildCorrector();
  auto s = c.Suggest(Q({"health", "zzzzzzzzzz"}));
  // The engine corrects what it can; health is known, the noise word is
  // kept. Something changed? No — health unchanged, noise unchanged: no
  // suggestion at all.
  EXPECT_TRUE(s.empty());
}

TEST(LogCorrectorTest, AtMostOneSuggestion) {
  LogCorrector c = BuildCorrector();
  for (const char* q : {"helth insurance", "gerat reef", "instanse"}) {
    Query query;
    for (const auto& w : SplitWhitespace(q)) query.keywords.push_back(w);
    EXPECT_LE(c.Suggest(query).size(), 1u) << q;
  }
}

TEST(LogCorrectorTest, PopularityAccumulatesAcrossQueries) {
  LogCorrector c;
  c.AddLogQuery({"shared", "alpha"}, 10);
  c.AddLogQuery({"shared", "beta"}, 20);
  c.Freeze();
  EXPECT_EQ(c.log_vocabulary_size(), 3u);
}

}  // namespace
}  // namespace xclean
