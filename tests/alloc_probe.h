#ifndef XCLEAN_TESTS_ALLOC_PROBE_H_
#define XCLEAN_TESTS_ALLOC_PROBE_H_

// Allocation-counting probe: replaces the global operator new/delete with
// malloc/free wrappers that bump an atomic counter on every allocation.
// Replacement operators are program-wide, so include this header from
// exactly ONE translation unit of a test binary (the replacement is
// link-time; two definitions would collide).
//
// Usage:
//   {
//     xclean::testing::AllocProbe probe;
//     ... code under test ...
//     EXPECT_EQ(probe.allocations(), 0u);
//   }

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace xclean::testing {

inline std::atomic<uint64_t> g_allocation_count{0};

/// Samples the global allocation counter; allocations() reports how many
/// operator-new calls happened since construction (on any thread — the
/// tests that use this run the probed region single-threaded).
class AllocProbe {
 public:
  AllocProbe()
      : start_(g_allocation_count.load(std::memory_order_relaxed)) {}

  uint64_t allocations() const {
    return g_allocation_count.load(std::memory_order_relaxed) - start_;
  }

 private:
  uint64_t start_;
};

inline void* CountedAlloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of the alignment.
  size = (size + align - 1) / align * align;
  return std::aligned_alloc(align, size);
}

}  // namespace xclean::testing

void* operator new(std::size_t size) {
  void* p = xclean::testing::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = xclean::testing::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return xclean::testing::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return xclean::testing::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = xclean::testing::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = xclean::testing::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return xclean::testing::CountedAlignedAlloc(size,
                                              static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return xclean::testing::CountedAlignedAlloc(size,
                                              static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // XCLEAN_TESTS_ALLOC_PROBE_H_
