// Deterministic crash harness for the durable snapshot lifecycle
// (index/manifest.h). Three attack families, all seeded and replayable:
//
//   1. Torn-write sweeps: truncate the newest snapshot file at every v2
//      section boundary (plus seeded random offsets), truncate the journal
//      at every byte offset, and flip random bits — after each schedule,
//      recovery must yield a checksum-valid index equal to the previous or
//      the newest generation, never a mix, never an unloadable state. A
//      second journal sweep restarts the publisher on each torn tail,
//      publishes and retires, and asserts the new generation recovers
//      (Open's tail repair: post-restart records must stay replayable).
//   2. Process-kill tests: a forked child arms a crash callback at a named
//      durability stage (temp-file open, write, fsync, rename, directory
//      sync, journal append) and publishes; the parent reaps it and
//      asserts the recovery invariant on what the child left behind.
//   3. End-to-end: ServingEngine::RecoverFrom serves the recovered
//      generation.
//
// Together the sweeps run well over 200 randomized schedules (counted and
// asserted below). Registered under the `crash` ctest label; the kill
// tests self-skip when fault injection is compiled out.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "delta/live_index.h"
#include "index/index_io.h"
#include "index/manifest.h"
#include "serve/engine.h"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace xclean {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<XmlIndex> BuildIndex(uint64_t seed, uint32_t pubs) {
  DblpGenOptions gen;
  gen.num_publications = pubs;
  gen.seed = seed;
  return XmlIndex::Build(GenerateDblp(gen), IndexOptions());
}

void WriteBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Byte offsets at which a torn write of a v2 snapshot is "interesting":
/// inside the header, then for each section just before/after the tag, the
/// size field, mid-payload, and the trailing checksum. Walks the real
/// framing (tag u8, size u64, payload, checksum u64) so the sweep tracks
/// the format instead of hard-coding today's section list.
std::vector<size_t> SectionBoundaries(const std::string& bytes) {
  std::vector<size_t> offsets = {0, 3, 6, 10};  // magic + version splits
  size_t pos = 10;
  while (pos + 9 <= bytes.size()) {
    uint64_t payload_size = 0;
    std::memcpy(&payload_size, bytes.data() + pos + 1, sizeof(payload_size));
    const size_t payload_at = pos + 9;
    if (payload_size > bytes.size() - payload_at) break;  // torn input
    offsets.push_back(pos + 1);                      // after the tag
    offsets.push_back(payload_at);                   // after the size
    offsets.push_back(payload_at + payload_size / 2);  // mid payload
    offsets.push_back(payload_at + payload_size);    // before the checksum
    pos = payload_at + payload_size + 8;
    offsets.push_back(pos > bytes.size() ? bytes.size() : pos);
  }
  return offsets;
}

/// Scratch snapshot directory with two published generations whose exact
/// serialized bytes are known, so every test can assert "old or new, never
/// a mix" by direct byte comparison.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/crash_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    gen1_index_ = BuildIndex(11, 80);
    gen2_index_ = BuildIndex(22, 110);

    SnapshotLifecycle lifecycle(dir_);
    PublishOptions options;
    options.sync = false;  // sweeps rewrite files; fsync adds only time
    Result<PublishedSnapshot> p1 = lifecycle.Publish(*gen1_index_, options);
    ASSERT_TRUE(p1.ok()) << p1.status().ToString();
    gen1_ = p1.value();
    Result<PublishedSnapshot> p2 = lifecycle.Publish(*gen2_index_, options);
    ASSERT_TRUE(p2.ok()) << p2.status().ToString();
    gen2_ = p2.value();

    Result<std::string> bytes = ReadFileToString(gen1_.path);
    ASSERT_TRUE(bytes.ok());
    gen1_bytes_ = std::move(bytes).value();
    bytes = ReadFileToString(gen2_.path);
    ASSERT_TRUE(bytes.ok());
    gen2_bytes_ = std::move(bytes).value();
    ASSERT_NE(gen1_bytes_, gen2_bytes_);
  }
  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }

  /// The recovery invariant, checked after every schedule: recovery yields
  /// exactly generation 1 or generation 2 with its published bytes intact
  /// on disk, or reports NotFound — it never loads anything else.
  void CheckInvariant(const char* schedule, bool gen2_may_survive,
                      bool not_found_ok = false) {
    Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
    if (!r.ok()) {
      ASSERT_TRUE(not_found_ok)
          << schedule << ": " << r.status().ToString();
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound) << schedule;
      return;
    }
    const RecoveredSnapshot& got = r.value();
    ASSERT_TRUE(got.generation == 1 || got.generation == 2) << schedule;
    if (!gen2_may_survive) {
      EXPECT_EQ(got.generation, 1u) << schedule;
    }
    const std::string& want_bytes =
        got.generation == 1 ? gen1_bytes_ : gen2_bytes_;
    const auto& want_index = got.generation == 1 ? gen1_index_ : gen2_index_;
    Result<std::string> on_disk = ReadFileToString(got.path);
    ASSERT_TRUE(on_disk.ok()) << schedule;
    EXPECT_EQ(on_disk.value(), want_bytes) << schedule;
    EXPECT_EQ(got.index->total_tokens(), want_index->total_tokens())
        << schedule;
  }

  std::string dir_;
  std::unique_ptr<XmlIndex> gen1_index_;
  std::unique_ptr<XmlIndex> gen2_index_;
  PublishedSnapshot gen1_;
  PublishedSnapshot gen2_;
  std::string gen1_bytes_;
  std::string gen2_bytes_;
};

TEST_F(CrashRecoveryTest, TornSnapshotSweepFallsBackToPreviousGeneration) {
  // Every section boundary, then ±1/±7/±23 around each (seeded offsets
  // would do as well; fixed strides keep failures trivially replayable).
  std::vector<size_t> cuts;
  for (size_t b : SectionBoundaries(gen2_bytes_)) {
    for (long delta : {0L, 1L, -1L, 7L, -7L, 23L, -23L}) {
      const long cut = static_cast<long>(b) + delta;
      if (cut >= 0 && cut < static_cast<long>(gen2_bytes_.size())) {
        cuts.push_back(static_cast<size_t>(cut));
      }
    }
  }
  EXPECT_GE(cuts.size(), 100u);  // sweep breadth, see file comment

  for (size_t cut : cuts) {
    WriteBytes(gen2_.path, std::string_view(gen2_bytes_).substr(0, cut));
    CheckInvariant(
        ("truncate snap at " + std::to_string(cut)).c_str(),
        /*gen2_may_survive=*/false);
  }
  // Untruncated control: the newest generation recovers.
  WriteBytes(gen2_.path, gen2_bytes_);
  CheckInvariant("untruncated control", /*gen2_may_survive=*/true);
  Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().generation, 2u);
}

TEST_F(CrashRecoveryTest, SnapshotBitflipSweepNeverLoadsCorruptBytes) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = gen2_bytes_;
    const size_t at = rng.Uniform(mutated.size());
    mutated[at] = static_cast<char>(
        mutated[at] ^ static_cast<char>(1u << rng.Uniform(8)));
    WriteBytes(gen2_.path, mutated);
    // A one-bit change always alters the FNV-1a stream hash (each step is
    // a bijection in the running state), so generation 2 must be skipped.
    CheckInvariant(("bitflip at " + std::to_string(at)).c_str(),
                   /*gen2_may_survive=*/false);
  }
}

TEST_F(CrashRecoveryTest, TornManifestSweepKeepsEveryIntactGeneration) {
  Result<std::string> journal = ReadFileToString(ManifestPath());
  ASSERT_TRUE(journal.ok());
  const std::string manifest_bytes = journal.value();
  ASSERT_GE(manifest_bytes.size(), 100u);  // sweep breadth, see file comment

  for (size_t cut = 0; cut <= manifest_bytes.size(); ++cut) {
    WriteBytes(ManifestPath(),
               std::string_view(manifest_bytes).substr(0, cut));
    // Tearing the journal can forget generations (down to NotFound when
    // even generation 1's record is torn) but must never surface a record
    // half-applied: replay itself must succeed on every prefix.
    Result<ManifestState> replayed = ReplayManifest(dir_);
    ASSERT_TRUE(replayed.ok()) << "cut at " << cut << ": "
                               << replayed.status().ToString();
    CheckInvariant(("truncate manifest at " + std::to_string(cut)).c_str(),
                   /*gen2_may_survive=*/true, /*not_found_ok=*/true);
  }
  WriteBytes(ManifestPath(), manifest_bytes);
  Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().generation, 2u);
}

// The publisher restarts on a torn journal, publishes a new generation,
// and retires the old ones — the full post-crash roll. Open() must cut
// the corrupt tail back to the valid prefix first: appends go through
// O_APPEND, so a tail left in place would make every post-restart record
// invisible to replay, and the retire pass (trusting in-memory state)
// would then delete the only generations recovery could still see,
// leaving a perfectly valid new snapshot on disk that recovery reports
// as NotFound.
TEST_F(CrashRecoveryTest, RepublishAfterTornManifestTailStaysRecoverable) {
  Result<std::string> journal = ReadFileToString(ManifestPath());
  ASSERT_TRUE(journal.ok());
  const std::string manifest_bytes = journal.value();
  auto gen3_index = BuildIndex(33, 130);
  PublishOptions options;
  options.sync = false;

  for (size_t cut = 0; cut <= manifest_bytes.size(); ++cut) {
    const std::string schedule = "manifest cut " + std::to_string(cut);
    // Restore the two published generations, then tear the journal at
    // `cut` — the directory a crashed publisher leaves behind.
    WriteBytes(gen1_.path, gen1_bytes_);
    WriteBytes(gen2_.path, gen2_bytes_);
    WriteBytes(ManifestPath(),
               std::string_view(manifest_bytes).substr(0, cut));

    SnapshotLifecycle lifecycle(dir_);
    ASSERT_TRUE(lifecycle.Open().ok()) << schedule;
    Result<PublishedSnapshot> p = lifecycle.Publish(*gen3_index, options);
    ASSERT_TRUE(p.ok()) << schedule << ": " << p.status().ToString();
    ASSERT_TRUE(lifecycle.RetireOldGenerations(/*keep_latest=*/1).ok())
        << schedule;

    // Only the fresh publish survives retirement, so recovery must find
    // it — clean replay, no skipped generations, published bytes intact.
    Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
    ASSERT_TRUE(r.ok()) << schedule << ": " << r.status().ToString();
    EXPECT_EQ(r.value().generation, p.value().generation) << schedule;
    EXPECT_EQ(r.value().generations_skipped, 0u) << schedule;
    EXPECT_EQ(r.value().index->total_tokens(), gen3_index->total_tokens())
        << schedule;
  }
}

#if !defined(_WIN32)

/// Forks a child that arms `crash_point` to _exit(kCrashExit) on its first
/// hit and then publishes generation 3; returns the child's wait status.
/// The parent never arms anything, so its registry stays clean.
class KillTest : public CrashRecoveryTest {
 protected:
  static constexpr int kCrashExit = 42;

  int PublishInChildKilledAt(const char* crash_point) {
    auto gen3 = BuildIndex(33, 130);
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: crash at the named stage, mid-publish. _exit skips atexit
      // handlers (and LSan's end-of-process checks) — the point is to die
      // abruptly, exactly as a power cut would at this stage.
      if (crash_point != nullptr) {
        fault::ArmCallback(crash_point, [] { _exit(kCrashExit); }, 1);
      }
      SnapshotLifecycle lifecycle(dir_);
      PublishOptions options;
      options.sync = false;
      Result<PublishedSnapshot> p = lifecycle.Publish(*gen3, options);
      if (!p.ok()) _exit(1);
      // No crash point armed: die right after the commit instead — the
      // journal record alone must carry the new generation.
      _exit(crash_point == nullptr ? kCrashExit : 0);
    }
    int wait_status = 0;
    EXPECT_EQ(::waitpid(pid, &wait_status, 0), pid);
    return wait_status;
  }

  /// Post-crash invariant when generation 3's publish may or may not have
  /// committed: recovery yields 3 (fully committed) or falls back to 2;
  /// never a mix, never a failure.
  void CheckPostCrash(const char* schedule, bool expect_gen3) {
    Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
    ASSERT_TRUE(r.ok()) << schedule << ": " << r.status().ToString();
    ASSERT_TRUE(r.value().generation == 2 || r.value().generation == 3)
        << schedule;
    if (expect_gen3) {
      EXPECT_EQ(r.value().generation, 3u) << schedule;
    } else {
      EXPECT_EQ(r.value().generation, 2u) << schedule;
    }
    if (r.value().generation == 2) {
      Result<std::string> on_disk = ReadFileToString(r.value().path);
      ASSERT_TRUE(on_disk.ok());
      EXPECT_EQ(on_disk.value(), gen2_bytes_) << schedule;
    }
  }
};

TEST_F(KillTest, KilledBeforeJournalCommitRecoversPreviousGeneration) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
  }
  // Every stage of the snapshot-file write runs before the journal commit,
  // so a kill at any of them must leave generation 2 live. `durable.append`
  // kills the journal write itself (commit record never starts);
  // `durable.sync` fires first inside AtomicWriteFile when sync is on.
  for (const char* point :
       {"durable.open_tmp", "durable.write", "durable.rename",
        "durable.append"}) {
    const int wait_status = PublishInChildKilledAt(point);
    ASSERT_TRUE(WIFEXITED(wait_status)) << point;
    ASSERT_EQ(WEXITSTATUS(wait_status), kCrashExit)
        << point << " never fired in the child";
    CheckPostCrash(point, /*expect_gen3=*/false);
  }
}

TEST_F(KillTest, KilledAtSyncStagesRecoversPreviousGeneration) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
  }
  // Sync-path stages only exist on the durable path; re-publish with
  // sync on in the child by arming the sync points (they are hit before
  // the journal commit record is durable).
  for (const char* point : {"durable.sync", "durable.sync_dir"}) {
    auto gen3 = BuildIndex(33, 130);
    const pid_t pid = fork();
    if (pid == 0) {
      fault::ArmCallback(point, [] { _exit(kCrashExit); }, 1);
      SnapshotLifecycle lifecycle(dir_);
      Result<PublishedSnapshot> p = lifecycle.Publish(*gen3);  // sync=true
      _exit(p.ok() ? 0 : 1);
    }
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status)) << point;
    ASSERT_EQ(WEXITSTATUS(wait_status), kCrashExit) << point;
    CheckPostCrash(point, /*expect_gen3=*/false);
  }
}

/// The incremental-indexing compactor (delta/live_index.h) publishes its
/// merged generation through the same journal, so a compactor killed at
/// any durability stage must leave the directory recoverable to the
/// previous generation or the freshly compacted one — never a mix. The
/// compacted generation is recognizable by a marker token that exists only
/// in the document added live before the compaction.
TEST_F(KillTest, CompactorKilledMidPublishLeavesOldOrNewGeneration) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
  }
  constexpr const char* kMarker = "zyzzyva";
  ASSERT_FALSE(gen2_index_->vocabulary().Contains(kMarker));
  Result<std::string> manifest = ReadFileToString(ManifestPath());
  ASSERT_TRUE(manifest.ok());
  const std::string manifest_bytes = manifest.value();

  // nullptr = no fault: the child completes the compaction (including the
  // journal commit), then dies — generation 3 must recover.
  for (const char* point : {"durable.open_tmp", "durable.write",
                            "durable.rename", "durable.append",
                            static_cast<const char*>(nullptr)}) {
    const std::string schedule =
        std::string("compactor killed at ") + (point ? point : "(none)");
    // Restore the directory to its two-generation state: both snapshot
    // files and the journal, which the previous iteration's child may
    // have extended.
    WriteBytes(gen1_.path, gen1_bytes_);
    WriteBytes(gen2_.path, gen2_bytes_);
    WriteBytes(ManifestPath(), manifest_bytes);

    const pid_t pid = fork();
    if (pid == 0) {
      if (point != nullptr) {
        fault::ArmCallback(point, [] { _exit(kCrashExit); }, 1);
      }
      // Child: layer a live stack over generation 2, add one marker
      // document, compact straight through the journal, then die.
      delta::LiveIndexOptions lopts;
      delta::LiveIndex live(
          std::shared_ptr<const XmlIndex>(std::move(gen2_index_)), lopts);
      Result<delta::DocId> id = live.Add(
          "<article><title>zyzzyva paper</title></article>");
      if (!id.ok()) _exit(1);
      SnapshotLifecycle lifecycle(dir_);
      Result<uint64_t> gen = live.Compact(&lifecycle, /*sync=*/false);
      if (!gen.ok()) _exit(1);
      _exit(point == nullptr ? kCrashExit : 0);
    }
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status)) << schedule;
    ASSERT_EQ(WEXITSTATUS(wait_status), kCrashExit)
        << schedule << ": crash point never fired in the child";

    Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir_);
    ASSERT_TRUE(r.ok()) << schedule << ": " << r.status().ToString();
    ASSERT_TRUE(r.value().generation == 2 || r.value().generation == 3)
        << schedule;
    if (r.value().generation == 3) {
      // The committed compaction: the merged index carries the live
      // document, whole.
      EXPECT_TRUE(r.value().index->vocabulary().Contains(kMarker))
          << schedule;
    } else {
      // The previous generation, byte-identical — no partial merge ever
      // becomes visible.
      Result<std::string> on_disk = ReadFileToString(r.value().path);
      ASSERT_TRUE(on_disk.ok()) << schedule;
      EXPECT_EQ(on_disk.value(), gen2_bytes_) << schedule;
      EXPECT_FALSE(r.value().index->vocabulary().Contains(kMarker))
          << schedule;
    }
    if (point == nullptr) {
      EXPECT_EQ(r.value().generation, 3u) << schedule;
    }
  }
}

TEST_F(KillTest, KilledAfterCommitRecoversNewGeneration) {
  // No fault needed: the child completes the publish, then dies before it
  // could tell anyone — the commit record alone must carry generation 3.
  const int wait_status = PublishInChildKilledAt(nullptr);
  ASSERT_TRUE(WIFEXITED(wait_status));
  ASSERT_EQ(WEXITSTATUS(wait_status), kCrashExit);
  CheckPostCrash("exit after commit", /*expect_gen3=*/true);
}

#endif  // !_WIN32

TEST_F(CrashRecoveryTest, ServingEngineRecoverFromServesRecoveredGeneration) {
  serve::EngineOptions options;
  options.pool.num_threads = 1;
  DblpGenOptions bootstrap;
  bootstrap.num_publications = 10;
  serve::ServingEngine engine(
      std::make_shared<const XCleanSuggester>(
          XCleanSuggester::FromTree(GenerateDblp(bootstrap))),
      options);

  // Newest generation corrupt: the engine comes up on generation 1.
  std::string mutated = gen2_bytes_;
  mutated[mutated.size() / 3] ^= 0x10;
  WriteBytes(gen2_.path, mutated);
  Result<uint64_t> recovered = engine.RecoverFrom(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value(), 1u);
  EXPECT_TRUE(engine.Suggest("information retrieval").status.ok());

  // Repair generation 2: recovery moves forward and swaps the snapshot.
  WriteBytes(gen2_.path, gen2_bytes_);
  recovered = engine.RecoverFrom(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 2u);
  EXPECT_EQ(engine.snapshot_version(), 3u);  // bootstrap + two recoveries
  EXPECT_TRUE(engine.Suggest("database systems").status.ok());
  engine.Shutdown();
}

}  // namespace
}  // namespace xclean
