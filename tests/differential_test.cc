#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/naive.h"
#include "core/query_scratch.h"
#include "core/xclean.h"
#include "data/workload.h"
#include "delta/layer.h"
#include "delta/live_index.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace xclean {
namespace {

/// Differential-oracle harness: the naive per-candidate scorer (Sec. V) is
/// an exact reference for the one-pass algorithm, so any hot-path
/// optimization must keep XClean score-identical to it. This test generates
/// random corpora and dirty queries (seeded; override the base seed with
/// XCLEAN_DIFF_SEED to widen coverage in CI) and checks, per semantics:
///
///   - gamma = 0 (unbounded accumulators): XClean == naive within 1e-9;
///   - gamma > 0 (bounded): the pruned top-k is a subset of the exact
///     candidate set, every pruned score is an underestimate of the exact
///     score (eviction can only discard probability mass), and whenever the
///     run reports zero evictions the pruned list is exactly the exact
///     top-k prefix.

uint64_t BaseSeed() {
  const char* env = std::getenv("XCLEAN_DIFF_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 20110411ull;
}

/// Random corpora with confusable vocabulary and irregular structure:
/// variable nesting depth (so min_depth and result-type inference have
/// real work), repeated words (tf > 1), and sibling record types.
std::unique_ptr<XmlIndex> RandomCorpus(uint64_t seed) {
  static const char* kWords[] = {
      "tree",  "trees", "trie",   "tried", "three", "icde",  "icdt",
      "index", "night", "light",  "sight", "graph", "grape", "query",
      "quern", "table", "cable",  "fable", "joins", "coins", "merge",
      "serge", "parse", "sparse", "terse"};
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  XmlTreeBuilder b;
  EXPECT_TRUE(b.BeginElement("corpus").ok());
  uint64_t sections = 2 + rng.Uniform(4);
  for (uint64_t s = 0; s < sections; ++s) {
    EXPECT_TRUE(
        b.BeginElement(rng.Bernoulli(0.5) ? "journal" : "proceedings").ok());
    uint64_t records = 2 + rng.Uniform(6);
    for (uint64_t r = 0; r < records; ++r) {
      EXPECT_TRUE(b.BeginElement(rng.Bernoulli(0.7) ? "paper" : "book").ok());
      uint64_t fields = 1 + rng.Uniform(3);
      for (uint64_t f = 0; f < fields; ++f) {
        std::string text;
        uint64_t words = 1 + rng.Uniform(7);
        for (uint64_t w = 0; w < words; ++w) {
          if (!text.empty()) text += " ";
          text += kWords[rng.Uniform(std::size(kWords))];
          // Repeats drive tf > 1 through the per-entity counts.
          if (rng.Bernoulli(0.15)) {
            text += " ";
            text += text.substr(text.find_last_of(' ') + 1);
          }
        }
        EXPECT_TRUE(
            b.AddLeaf(rng.Bernoulli(0.5) ? "title" : "abstract", text).ok());
      }
      if (rng.Bernoulli(0.3)) {
        EXPECT_TRUE(b.BeginElement("citations").ok());
        EXPECT_TRUE(
            b.AddLeaf("cite", kWords[rng.Uniform(std::size(kWords))]).ok());
        EXPECT_TRUE(b.EndElement().ok());
      }
      EXPECT_TRUE(b.EndElement().ok());
    }
    EXPECT_TRUE(b.EndElement().ok());
  }
  EXPECT_TRUE(b.EndElement().ok());
  Result<XmlTree> tree = std::move(b).Finish();
  EXPECT_TRUE(tree.ok());
  return XmlIndex::Build(std::move(tree).value());
}

/// Dirty queries via the workload generator's RAND/RULE perturbations over
/// queries sampled from the corpus itself (answerable ground truth), the
/// same machinery the paper's Sec. VII-A evaluation uses.
std::vector<Query> DirtyQueries(const XmlIndex& index, uint64_t seed) {
  WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.num_queries = 8;
  wopts.max_len = 3;
  wopts.min_keyword_cf = 1;
  Rng rng(seed);
  std::vector<Query> out;
  for (const Query& clean : SampleInitialQueries(index, wopts)) {
    out.push_back(clean);
    out.push_back(PerturbRand(clean, index, wopts, rng));
    out.push_back(PerturbRule(clean, index, wopts, rng));
  }
  return out;
}

void ExpectSameSuggestions(const std::vector<Suggestion>& fast,
                           const std::vector<Suggestion>& oracle,
                           double tolerance, const std::string& context) {
  ASSERT_EQ(fast.size(), oracle.size()) << context;
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].words, oracle[i].words) << context << " rank " << i;
    EXPECT_NEAR(fast[i].score, oracle[i].score,
                tolerance * (1.0 + std::abs(oracle[i].score)))
        << context << " rank " << i;
    EXPECT_EQ(fast[i].entity_count, oracle[i].entity_count)
        << context << " rank " << i;
    EXPECT_EQ(fast[i].result_type, oracle[i].result_type)
        << context << " rank " << i;
  }
}

class DifferentialTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(DifferentialTest, UnboundedXCleanEqualsNaiveOracle) {
  const Semantics semantics = GetParam();
  const uint64_t base = BaseSeed();
  for (uint64_t round = 0; round < 6; ++round) {
    const uint64_t seed = base + round;
    auto index = RandomCorpus(seed);
    XCleanOptions options;
    options.gamma = 0;
    options.semantics = semantics;
    options.top_k = 100;
    XClean fast(*index, options);
    NaiveCleaner oracle(*index, options);
    QueryScratch scratch;  // shared across queries: the production path
    std::vector<Suggestion> got;
    for (const Query& query : DirtyQueries(*index, seed)) {
      fast.SuggestWithScratch(query, scratch, &got, nullptr);
      ExpectSameSuggestions(got, oracle.Suggest(query), 1e-9,
                            query.ToString() + " seed " +
                                std::to_string(seed));
    }
  }
}

TEST_P(DifferentialTest, BoundedGammaIsSubsetWithUnderestimatedScores) {
  const Semantics semantics = GetParam();
  const uint64_t base = BaseSeed();
  for (uint64_t round = 0; round < 4; ++round) {
    const uint64_t seed = base + 100 + round;
    auto index = RandomCorpus(seed);
    XCleanOptions exact_opts;
    exact_opts.gamma = 0;
    exact_opts.semantics = semantics;
    exact_opts.top_k = 10000;  // the full exact candidate ranking
    XCleanOptions pruned_opts = exact_opts;
    pruned_opts.gamma = 4;
    pruned_opts.top_k = 10;
    XClean exact(*index, exact_opts);
    XClean pruned(*index, pruned_opts);
    for (const Query& query : DirtyQueries(*index, seed)) {
      std::vector<Suggestion> full = exact.SuggestWithStats(query, nullptr);
      XCleanRunStats stats;
      std::vector<Suggestion> topk = pruned.SuggestWithStats(query, &stats);
      const std::string context =
          query.ToString() + " seed " + std::to_string(seed);
      ASSERT_LE(topk.size(), pruned_opts.top_k) << context;
      for (const Suggestion& s : topk) {
        // Every surviving candidate exists in the exact ranking, and its
        // pruned score never exceeds the exact score (an evicted-and-
        // recreated accumulator restarts from zero, losing mass).
        auto it = std::find_if(full.begin(), full.end(),
                               [&](const Suggestion& f) {
                                 return f.words == s.words;
                               });
        ASSERT_NE(it, full.end()) << context << ": pruned suggestion not in "
                                  << "exact candidate set";
        EXPECT_LE(s.score,
                  it->score + 1e-9 * (1.0 + std::abs(it->score)))
            << context;
      }
      if (stats.accumulator_evictions == 0) {
        // No evictions: the bounded run is exact, so its list must be the
        // exact top-k prefix.
        ASSERT_LE(topk.size(), full.size()) << context;
        for (size_t i = 0; i < topk.size(); ++i) {
          EXPECT_EQ(topk[i].words, full[i].words) << context << " rank " << i;
          EXPECT_NEAR(topk[i].score, full[i].score,
                      1e-12 * (1.0 + std::abs(full[i].score)))
              << context << " rank " << i;
        }
      }
    }
  }
}

/// An attached-but-unlimited CancelToken must be bit-identical to no token
/// at all, against the naive oracle and across every semantics: the budget
/// checks may change when the algorithm stops, never one floating-point
/// operation of what it computes.
TEST_P(DifferentialTest, UnlimitedBudgetEqualsNaiveOracleBitIdentically) {
  const Semantics semantics = GetParam();
  const uint64_t base = BaseSeed();
  for (uint64_t round = 0; round < 3; ++round) {
    const uint64_t seed = base + 300 + round;
    auto index = RandomCorpus(seed);
    XCleanOptions options;
    options.gamma = 0;
    options.semantics = semantics;
    options.top_k = 100;
    XClean fast(*index, options);
    NaiveCleaner oracle(*index, options);
    QueryScratch scratch;
    std::vector<Suggestion> budgeted, bare;
    for (const Query& query : DirtyQueries(*index, seed)) {
      CancelToken unlimited;
      XCleanRunStats stats;
      fast.SuggestWithScratch(query, scratch, &budgeted, &stats, &unlimited);
      const std::string context =
          query.ToString() + " seed " + std::to_string(seed);
      EXPECT_FALSE(stats.truncated) << context;
      ExpectSameSuggestions(budgeted, oracle.Suggest(query), 1e-9, context);

      // And exactly equal — not merely within tolerance — to the same run
      // without a token.
      fast.SuggestWithScratch(query, scratch, &bare, nullptr);
      ASSERT_EQ(budgeted.size(), bare.size()) << context;
      for (size_t i = 0; i < budgeted.size(); ++i) {
        EXPECT_EQ(budgeted[i].words, bare[i].words) << context;
        EXPECT_EQ(budgeted[i].score, bare[i].score) << context;
        EXPECT_EQ(budgeted[i].entity_count, bare[i].entity_count) << context;
      }
    }
  }
}

/// gamma large enough to hold every candidate is exact end-to-end, across
/// every semantics and seed — the "subset-ordered prefix" property's
/// degenerate (and strongest) case.
TEST_P(DifferentialTest, LargeGammaEqualsUnbounded) {
  const Semantics semantics = GetParam();
  const uint64_t seed = BaseSeed() + 200;
  auto index = RandomCorpus(seed);
  XCleanOptions exact_opts;
  exact_opts.gamma = 0;
  exact_opts.semantics = semantics;
  exact_opts.top_k = 50;
  XCleanOptions bounded_opts = exact_opts;
  bounded_opts.gamma = 1000000;
  XClean exact(*index, exact_opts);
  XClean bounded(*index, bounded_opts);
  for (const Query& query : DirtyQueries(*index, seed)) {
    ExpectSameSuggestions(bounded.SuggestWithStats(query, nullptr),
                          exact.SuggestWithStats(query, nullptr), 1e-12,
                          query.ToString());
  }
}

/// One random document for the incremental-indexing oracle: documents are
/// depth-2 children of the live root, with the same confusable vocabulary
/// RandomCorpus uses so dirty queries hit overlapping variant sets across
/// layers.
std::string RandomDocumentXml(Rng& rng) {
  static const char* kWords[] = {
      "tree",  "trees", "trie",   "tried", "three", "icde",  "icdt",
      "index", "night", "light",  "sight", "graph", "grape", "query",
      "quern", "table", "cable",  "fable", "joins", "coins", "merge",
      "serge", "parse", "sparse", "terse"};
  const char* doc_tag = rng.Bernoulli(0.7) ? "paper" : "book";
  std::string xml = std::string("<") + doc_tag + ">";
  uint64_t fields = 1 + rng.Uniform(3);
  for (uint64_t f = 0; f < fields; ++f) {
    const char* tag = rng.Bernoulli(0.5) ? "title" : "abstract";
    xml += "<";
    xml += tag;
    xml += ">";
    uint64_t words = 1 + rng.Uniform(7);
    for (uint64_t w = 0; w < words; ++w) {
      if (w > 0) xml += " ";
      const char* word = kWords[rng.Uniform(std::size(kWords))];
      xml += word;
      if (rng.Bernoulli(0.15)) {
        xml += " ";
        xml += word;  // repeats drive tf > 1
      }
    }
    xml += "</";
    xml += tag;
    xml += ">";
  }
  xml += std::string("</") + doc_tag + ">";
  return xml;
}

/// Incremental-indexing oracle (delta/layered_xclean.h's exactness claim,
/// checked end to end): under a random schedule of adds, tombstone deletes
/// and compactions, the layered read path must score every query
/// identically to an index rebuilt from scratch over exactly the live
/// documents. Both the single-generation fast path and the layered path
/// must come under test.
TEST(DeltaDifferentialTest, DeltaLayersEqualFullRebuild) {
  const uint64_t base_seed = BaseSeed();
  const Semantics all[] = {Semantics::kNodeType, Semantics::kSlca,
                           Semantics::kElca};
  for (const Semantics semantics : all) {
    const uint64_t seed =
        base_seed + 400 + static_cast<uint64_t>(semantics) * 17;
    Rng rng(seed);

    std::vector<std::string> base_docs;
    for (int i = 0; i < 6; ++i) base_docs.push_back(RandomDocumentXml(rng));
    Result<XmlTree> base_tree = ParseXmlCollection(base_docs, "corpus");
    ASSERT_TRUE(base_tree.ok()) << base_tree.status().ToString();
    std::shared_ptr<const XmlIndex> base =
        XmlIndex::Build(std::move(base_tree).value());

    delta::LiveIndexOptions lopts;
    lopts.xclean.gamma = 0;  // the oracle contract requires exact scoring
    lopts.xclean.semantics = semantics;
    lopts.xclean.top_k = 50;
    delta::LiveIndex live(base, lopts);

    std::vector<delta::DocId> known;
    for (delta::DocId d = 0; d < live.base_doc_count(); ++d) {
      known.push_back(d);
    }

    size_t fast_checks = 0;
    size_t layered_checks = 0;
    auto check = [&](uint64_t tag) {
      std::shared_ptr<const delta::LiveSnapshot> snap = live.snapshot();
      Result<XmlTree> joined = delta::JoinLiveTree(snap->layers());
      ASSERT_TRUE(joined.ok()) << joined.status().ToString();
      std::unique_ptr<XmlIndex> rebuilt =
          XmlIndex::Build(std::move(joined).value(), base->options());
      XClean oracle(*rebuilt, lopts.xclean);
      if (snap->fast_path()) {
        ++fast_checks;
      } else {
        ++layered_checks;
      }
      QueryScratch scratch;
      for (const Query& query : DirtyQueries(*rebuilt, seed + tag)) {
        ExpectSameSuggestions(snap->Suggest(query, &scratch),
                              oracle.SuggestWithStats(query, nullptr), 1e-9,
                              query.ToString() + " seed " +
                                  std::to_string(seed) + " op " +
                                  std::to_string(tag));
      }
    };

    check(0);  // pristine stack: the single-generation fast path
    const int kOps = 40;
    for (int op = 1; op <= kOps; ++op) {
      const uint64_t dice = rng.Uniform(100);
      if (dice < 55) {
        Result<delta::DocId> id = live.Add(RandomDocumentXml(rng));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        known.push_back(id.value());
      } else if (dice < 85) {
        // May hit an already-deleted id: Delete is idempotent.
        ASSERT_TRUE(live.Delete(known[rng.Uniform(known.size())]).ok());
      } else {
        Result<uint64_t> gen = live.Compact();
        ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      }
      if (op % 5 == 0 || op == kOps) check(static_cast<uint64_t>(op));
    }
    EXPECT_GT(fast_checks, 0u);
    EXPECT_GT(layered_checks, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, DifferentialTest,
                         ::testing::Values(Semantics::kNodeType,
                                           Semantics::kSlca,
                                           Semantics::kElca),
                         [](const auto& info) {
                           switch (info.param) {
                             case Semantics::kNodeType:
                               return "NodeType";
                             case Semantics::kSlca:
                               return "Slca";
                             default:
                               return "Elca";
                           }
                         });

}  // namespace
}  // namespace xclean
