#include "data/dblp_gen.h"

#include <gtest/gtest.h>

#include "index/xml_index.h"

namespace xclean {
namespace {

DblpGenOptions SmallOptions() {
  DblpGenOptions o;
  o.num_publications = 500;
  o.seed = 17;
  return o;
}

TEST(DblpGenTest, DeterministicInSeed) {
  XmlTree a = GenerateDblp(SmallOptions());
  XmlTree b = GenerateDblp(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (NodeId n = 0; n < a.size(); n += 37) {
    EXPECT_EQ(a.label(n), b.label(n));
    EXPECT_EQ(a.text(n), b.text(n));
  }
  DblpGenOptions other = SmallOptions();
  other.seed = 18;
  XmlTree c = GenerateDblp(other);
  EXPECT_TRUE(c.size() != a.size() || c.text(5) != a.text(5));
}

TEST(DblpGenTest, StructureIsDataCentric) {
  XmlTree t = GenerateDblp(SmallOptions());
  EXPECT_EQ(t.label(0), "dblp");
  // Depth profile like the paper's DBLP: shallow, max depth <= 7.
  EXPECT_LE(t.max_depth(), 7u);
  EXPECT_GE(t.max_depth(), 3u);
  EXPECT_GT(t.avg_depth(), 2.0);
  EXPECT_LT(t.avg_depth(), 4.5);
  // 500 publications directly under the root.
  uint32_t pubs = 0;
  for (NodeId c = t.FirstChild(t.root()); c != kInvalidNode;
       c = t.NextSibling(c)) {
    ++pubs;
  }
  EXPECT_EQ(pubs, 500u);
}

TEST(DblpGenTest, PublicationsHaveExpectedFields) {
  XmlTree t = GenerateDblp(SmallOptions());
  NodeId pub = t.FirstChild(t.root());
  ASSERT_NE(pub, kInvalidNode);
  bool has_key = false, has_author = false, has_title = false,
       has_year = false;
  for (NodeId c = t.FirstChild(pub); c != kInvalidNode; c = t.NextSibling(c)) {
    if (t.label(c) == "@key") has_key = true;
    if (t.label(c) == "author") has_author = true;
    if (t.label(c) == "title") has_title = true;
    if (t.label(c) == "year") has_year = true;
  }
  EXPECT_TRUE(has_key);
  EXPECT_TRUE(has_author);
  EXPECT_TRUE(has_title);
  EXPECT_TRUE(has_year);
}

TEST(DblpGenTest, IndexableWithSkewedVocabulary) {
  auto index = XmlIndex::Build(GenerateDblp(SmallOptions()));
  IndexStats stats = index->stats();
  EXPECT_GT(stats.vocabulary_size, 200u);
  EXPECT_GT(stats.token_occurrences, 3000u);
  // Zipf skew: the most frequent token dwarfs the median.
  uint64_t max_cf = 0;
  std::vector<uint64_t> cfs;
  for (TokenId tok = 0; tok < index->vocabulary().size(); ++tok) {
    max_cf = std::max(max_cf, index->collection_freq(tok));
    cfs.push_back(index->collection_freq(tok));
  }
  std::sort(cfs.begin(), cfs.end());
  EXPECT_GT(max_cf, cfs[cfs.size() / 2] * 20);
}

TEST(DblpGenTest, CitationBlocksAddDepth) {
  DblpGenOptions o = SmallOptions();
  o.cite_probability = 1.0;
  XmlTree t = GenerateDblp(o);
  EXPECT_EQ(t.FindPath("/dblp/article/citations/cite") !=
                XmlTree::kInvalidPath ||
            t.FindPath("/dblp/inproceedings/citations/cite") !=
                XmlTree::kInvalidPath,
            true);
  EXPECT_EQ(t.max_depth(), 4u);
}

}  // namespace
}  // namespace xclean
