// The incremental-indexing subsystem (src/delta/): memtable visibility,
// tombstone deletion, compaction score-stability, stable DocIds, the
// ServingEngine live-update API (including cache invalidation across
// mutations and live metrics), durable background compaction, and a
// concurrent add/suggest/compact stress run (the `delta` ctest label's
// TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/query_scratch.h"
#include "core/suggester.h"
#include "delta/live_index.h"
#include "index/manifest.h"
#include "index/xml_index.h"
#include "serve/engine.h"
#include "xml/parser.h"

namespace xclean {
namespace {

namespace fs = std::filesystem;

constexpr const char* kBaseXml =
    "<dblp>"
    "<article><title>keyword search</title><year>2009</year></article>"
    "<article><title>xml keyword query</title></article>"
    "<article><title>spelling correction</title></article>"
    "<book><title>database systems</title></book>"
    "</dblp>";

std::shared_ptr<const XmlIndex> BuildBase() {
  Result<XmlTree> tree = ParseXmlString(kBaseXml);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return XmlIndex::Build(std::move(tree).value());
}

delta::LiveIndexOptions ExactOptions() {
  delta::LiveIndexOptions o;
  o.xclean.gamma = 0;
  o.xclean.top_k = 20;
  return o;
}

Query Q(std::vector<std::string> keywords) {
  Query q;
  q.keywords = std::move(keywords);
  return q;
}

bool Suggests(const delta::LiveIndex& live, const Query& query,
              const std::string& word) {
  QueryScratch scratch;
  for (const Suggestion& s :
       live.snapshot()->Suggest(query, &scratch)) {
    for (const std::string& w : s.words) {
      if (w == word) return true;
    }
  }
  return false;
}

TEST(LiveIndexTest, AddIsVisibleToTheNextSuggestCall) {
  delta::LiveIndex live(BuildBase(), ExactOptions());
  // "zanzibar" exists nowhere in the base corpus.
  EXPECT_FALSE(Suggests(live, Q({"zanzibar"}), "zanzibar"));

  Result<delta::DocId> id =
      live.Add("<article><title>zanzibar travels</title></article>");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // The visibility contract: queryable the moment Add returns, no flush.
  EXPECT_TRUE(Suggests(live, Q({"zanzibar"}), "zanzibar"));
  // And reachable through the error model from a misspelling.
  EXPECT_TRUE(Suggests(live, Q({"zanzibat"}), "zanzibar"));
  EXPECT_EQ(live.counters().adds, 1u);
  EXPECT_EQ(live.counters().memtable_docs, 1u);
}

TEST(LiveIndexTest, DeleteSuppressesMemtableAndBaseDocuments) {
  delta::LiveIndex live(BuildBase(), ExactOptions());

  // Memtable delete: the staged document is dropped outright.
  Result<delta::DocId> id =
      live.Add("<article><title>ephemeral note</title></article>");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(Suggests(live, Q({"ephemeral"}), "ephemeral"));
  ASSERT_TRUE(live.Delete(id.value()).ok());
  EXPECT_FALSE(Suggests(live, Q({"ephemeral"}), "ephemeral"));
  // Idempotent.
  EXPECT_TRUE(live.Delete(id.value()).ok());

  // Base delete: the document dies behind a tombstone. "spelling" occurs
  // only in base document 2 (0-based ordinal, DocId 2).
  ASSERT_TRUE(Suggests(live, Q({"spelling"}), "spelling"));
  ASSERT_TRUE(live.Delete(2).ok());
  EXPECT_FALSE(Suggests(live, Q({"spelling"}), "spelling"));
  // The rest of the base corpus still serves.
  EXPECT_TRUE(Suggests(live, Q({"database"}), "database"));
  EXPECT_EQ(live.counters().deletes, 2u);
}

TEST(LiveIndexTest, CompactionPreservesScoresExactly) {
  delta::LiveIndex live(BuildBase(), ExactOptions());
  ASSERT_TRUE(
      live.Add("<article><title>keyword search engines</title></article>")
          .ok());
  ASSERT_TRUE(
      live.Add("<article><title>query spelling xml</title></article>").ok());
  ASSERT_TRUE(live.Delete(0).ok());  // tombstone one base document

  const std::vector<Query> queries = {Q({"keyward"}), Q({"xml", "quary"}),
                                      Q({"speling"}), Q({"database"})};
  QueryScratch scratch;
  std::vector<std::vector<Suggestion>> before;
  for (const Query& q : queries) {
    before.push_back(live.snapshot()->Suggest(q, &scratch));
  }
  ASSERT_FALSE(live.snapshot()->fast_path());
  ASSERT_GT(live.snapshot()->layer_count(), 1u);

  Result<uint64_t> gen = live.Compact();
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_EQ(gen.value(), 0u);  // no lifecycle: in-memory merge only
  EXPECT_TRUE(live.snapshot()->fast_path());
  EXPECT_EQ(live.snapshot()->layer_count(), 1u);
  EXPECT_EQ(live.counters().compactions, 1u);

  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<Suggestion> after =
        live.snapshot()->Suggest(queries[i], &scratch);
    ASSERT_EQ(after.size(), before[i].size()) << "query " << i;
    for (size_t r = 0; r < after.size(); ++r) {
      EXPECT_EQ(after[r].words, before[i][r].words) << "query " << i;
      EXPECT_NEAR(after[r].score, before[i][r].score,
                  1e-9 * (1.0 + std::abs(before[i][r].score)))
          << "query " << i << " rank " << r;
      EXPECT_EQ(after[r].entity_count, before[i][r].entity_count)
          << "query " << i << " rank " << r;
      EXPECT_EQ(after[r].result_type, before[i][r].result_type)
          << "query " << i << " rank " << r;
    }
  }
}

TEST(LiveIndexTest, DocIdsRemainValidAcrossCompaction) {
  delta::LiveIndex live(BuildBase(), ExactOptions());
  Result<delta::DocId> id =
      live.Add("<article><title>persistent handle</title></article>");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(live.Compact().ok());
  ASSERT_TRUE(Suggests(live, Q({"persistent"}), "persistent"));

  // The pre-compaction id now addresses the document inside the new base
  // generation; deleting through it must still work.
  ASSERT_TRUE(live.Delete(id.value()).ok());
  EXPECT_FALSE(Suggests(live, Q({"persistent"}), "persistent"));
  // A second compaction folds the tombstone away for good.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_FALSE(Suggests(live, Q({"persistent"}), "persistent"));
  EXPECT_TRUE(Suggests(live, Q({"database"}), "database"));
}

TEST(LiveIndexTest, BackgroundCompactionPublishesDurably) {
  const std::string dir =
      testing::TempDir() + "/delta_publish_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  fs::remove_all(dir);
  SnapshotLifecycle lifecycle(dir);

  delta::LiveIndex live(BuildBase(), ExactOptions());
  ASSERT_TRUE(
      live.Add("<article><title>durable payload</title></article>").ok());

  std::atomic<bool> done{false};
  Result<uint64_t> outcome = 0;
  ASSERT_TRUE(live.CompactInBackground(&lifecycle,
                                       [&](Result<uint64_t> r) {
                                         outcome = std::move(r);
                                         done.store(true);
                                       })
                  .ok());
  live.WaitForCompaction();
  ASSERT_TRUE(done.load());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value(), 1u);
  EXPECT_EQ(live.counters().compactions, 1u);

  // Recovery from the journal yields the compacted generation, carrying
  // both the base corpus and the live-added document.
  Result<RecoveredSnapshot> recovered = RecoverLatestSnapshot(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().generation, 1u);
  EXPECT_TRUE(recovered.value().index->vocabulary().Contains("durable"));
  EXPECT_TRUE(recovered.value().index->vocabulary().Contains("database"));
  fs::remove_all(dir);
}

std::unique_ptr<serve::ServingEngine> MakeEngine(
    serve::EngineOptions options = {}) {
  options.pool.num_threads = 2;
  Result<XmlTree> tree = ParseXmlString(kBaseXml);
  EXPECT_TRUE(tree.ok());
  SuggesterOptions sopts;
  sopts.xclean.gamma = 0;
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromIndex(
          XmlIndex::Build(std::move(tree).value(), IndexOptions()), sopts));
  return std::make_unique<serve::ServingEngine>(std::move(suggester), options);
}

bool EngineSuggests(serve::ServingEngine& engine, const std::string& text,
                    const std::string& word) {
  serve::ServeResult r = engine.Suggest(text);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  for (const Suggestion& s : r.suggestions) {
    for (const std::string& w : s.words) {
      if (w == word) return true;
    }
  }
  return false;
}

TEST(EngineLiveUpdateTest, AddDeleteCompactThroughTheEngine) {
  std::unique_ptr<serve::ServingEngine> engine_ptr = MakeEngine();
  serve::ServingEngine& engine = *engine_ptr;
  ASSERT_TRUE(engine.EnableLiveUpdates().ok());

  // Warm the cache on the pre-add answer, then mutate: the mutation
  // sequence in the cache key makes the stale entry unreachable, so the
  // very next request sees the new document.
  EXPECT_FALSE(EngineSuggests(engine, "zeppelin", "zeppelin"));
  Result<delta::DocId> id =
      engine.AddDocument("<article><title>zeppelin flight</title></article>");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(EngineSuggests(engine, "zeppelin", "zeppelin"));
  EXPECT_TRUE(EngineSuggests(engine, "zeppelim", "zeppelin"));

  serve::MetricsSnapshot m = engine.Metrics();
  EXPECT_TRUE(m.live_enabled);
  EXPECT_EQ(m.live_adds, 1u);
  EXPECT_GT(m.delta_layers, 1u);

  ASSERT_TRUE(engine.DeleteDocument(id.value()).ok());
  EXPECT_FALSE(EngineSuggests(engine, "zeppelin", "zeppelin"));

  // Compact down to one generation; serving continues seamlessly.
  ASSERT_TRUE(engine.AddDocument("<article><title>postcompact token</title>"
                                 "</article>")
                  .ok());
  Result<uint64_t> gen = engine.CompactLive();
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_TRUE(EngineSuggests(engine, "postcompact", "postcompact"));
  EXPECT_FALSE(EngineSuggests(engine, "zeppelin", "zeppelin"));
  m = engine.Metrics();
  EXPECT_EQ(m.live_compactions, 1u);
  EXPECT_EQ(m.live_deletes, 1u);
  // The one-line dump carries the live section.
  EXPECT_NE(m.ToString().find("live="), std::string::npos) << m.ToString();
  engine.Shutdown();
}

TEST(EngineLiveUpdateTest, PreconditionsAndLifecycleErrors) {
  // space_tau > 0 cannot be layered.
  {
    Result<XmlTree> tree = ParseXmlString(kBaseXml);
    ASSERT_TRUE(tree.ok());
    SuggesterOptions sopts;
    sopts.space_tau = 2;
    serve::EngineOptions eopts;
    eopts.pool.num_threads = 1;
    serve::ServingEngine engine(
        std::make_shared<const XCleanSuggester>(XCleanSuggester::FromIndex(
            XmlIndex::Build(std::move(tree).value(), IndexOptions()), sopts)),
        eopts);
    EXPECT_EQ(engine.EnableLiveUpdates().code(),
              StatusCode::kInvalidArgument);
    engine.Shutdown();
  }

  std::unique_ptr<serve::ServingEngine> engine_ptr = MakeEngine();
  serve::ServingEngine& engine = *engine_ptr;
  // Mutations before enabling are refused.
  EXPECT_EQ(engine.AddDocument("<a><b>x</b></a>").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.DeleteDocument(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CompactLive().status().code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(engine.EnableLiveUpdates().ok());
  EXPECT_EQ(engine.EnableLiveUpdates().code(),
            StatusCode::kInvalidArgument);  // double enable

  // SwapIndex detaches the live stack: live mutations are refused again
  // and the engine serves the swapped snapshot alone.
  ASSERT_TRUE(
      engine.AddDocument("<article><title>volatile</title></article>").ok());
  ASSERT_TRUE(EngineSuggests(engine, "volatile", "volatile"));
  engine.SwapIndex(engine.snapshot());
  EXPECT_EQ(engine.live_index(), nullptr);
  EXPECT_EQ(engine.AddDocument("<a><b>x</b></a>").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(EngineSuggests(engine, "volatile", "volatile"));
  // Live updates can be re-enabled over the swapped snapshot.
  EXPECT_TRUE(engine.EnableLiveUpdates().ok());
  engine.Shutdown();
}

TEST(EngineLiveUpdateTest, AutoCompactionTriggersInBackground) {
  const std::string dir =
      testing::TempDir() + "/delta_auto_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  fs::remove_all(dir);
  std::unique_ptr<serve::ServingEngine> engine_ptr = MakeEngine();
  serve::ServingEngine& engine = *engine_ptr;
  ASSERT_TRUE(engine.EnableLiveUpdates(/*compact_after_docs=*/3, dir).ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine
                    .AddDocument("<article><title>bulk doc " +
                                 std::to_string(i) + "</title></article>")
                    .ok());
  }
  engine.WaitForLiveCompaction();
  serve::MetricsSnapshot m = engine.Metrics();
  EXPECT_GE(m.live_compactions, 1u);

  // The background compaction published durably.
  Result<RecoveredSnapshot> recovered = RecoverLatestSnapshot(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().index->vocabulary().Contains("bulk"));
  EXPECT_TRUE(EngineSuggests(engine, "bulk", "bulk"));
  engine.Shutdown();
  fs::remove_all(dir);
}

/// The TSan target behind `ctest -L delta`: concurrent adders, deleters,
/// readers and a compactor hammer one LiveIndex. Readers must always see a
/// coherent snapshot (no torn layer stacks), and the final state must
/// contain exactly the documents that survived.
TEST(LiveIndexStressTest, ConcurrentAddSuggestCompactStress) {
  delta::LiveIndex live(BuildBase(), ExactOptions());
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kDocsPerWriter = 12;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w] {
      for (int i = 0; i < kDocsPerWriter; ++i) {
        std::string word =
            "stress" + std::to_string(w) + "x" + std::to_string(i);
        Result<delta::DocId> id = live.Add("<article><title>" + word +
                                           " workload</title></article>");
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        if (i % 3 == 2) {
          ASSERT_TRUE(live.Delete(id.value()).ok());
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&live, &stop, &reads] {
      QueryScratch scratch;
      const Query queries[] = {Q({"workload"}), Q({"database"}),
                               Q({"keyword", "search"})};
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const delta::LiveSnapshot> snap = live.snapshot();
        std::vector<Suggestion> got =
            snap->Suggest(queries[i % 3], &scratch);
        // The base corpus is never deleted here, so "database" always
        // produces at least one suggestion regardless of interleaving.
        if (i % 3 == 1) {
          EXPECT_FALSE(got.empty());
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  std::thread compactor([&live, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      Result<uint64_t> gen = live.Compact();
      ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  compactor.join();
  EXPECT_GT(reads.load(), 0u);

  // Quiesced state: one final compaction, then exact content checks.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_TRUE(live.snapshot()->fast_path());
  const uint64_t kept = kWriters * (kDocsPerWriter - kDocsPerWriter / 3);
  EXPECT_EQ(live.counters().live_docs, 4u + kept);
  EXPECT_TRUE(Suggests(live, Q({"stress0x0"}), "stress0x0"));
  EXPECT_FALSE(Suggests(live, Q({"stress0x2"}), "stress0x2"));
}

}  // namespace
}  // namespace xclean
