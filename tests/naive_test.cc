#include "core/naive.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xclean {
namespace {

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

std::unique_ptr<XmlIndex> BuildSample() {
  return XmlIndex::Build(std::move(
      ParseXmlString(
          "<a><c><x>tree</x><x>trie icde</x></c>"
          "<d><x>trie</x><x>icde icdt icde</x></d></a>")
          .value()));
}

TEST(NaiveTest, CountsCandidatesAndPostings) {
  auto index = BuildSample();
  XCleanOptions options;
  options.max_ed = 1;
  NaiveCleaner naive(*index, options);
  naive.Suggest(Q({"tree", "icdt"}));
  // var(tree) = {tree, trie}, var(icdt) = {icdt, icde} -> 4 candidates.
  EXPECT_EQ(naive.last_candidates(), 4u);
  EXPECT_GT(naive.last_postings_read(), 0u);
  EXPECT_FALSE(naive.last_query_skipped());
}

TEST(NaiveTest, CandidateCapSkipsLargeSpaces) {
  auto index = BuildSample();
  XCleanOptions options;
  options.max_ed = 1;
  NaiveCleaner naive(*index, options);
  naive.set_candidate_cap(3);  // below the 4-candidate space
  EXPECT_TRUE(naive.Suggest(Q({"tree", "icdt"})).empty());
  EXPECT_TRUE(naive.last_query_skipped());

  naive.set_candidate_cap(4);
  EXPECT_FALSE(naive.Suggest(Q({"tree", "icdt"})).empty());
  EXPECT_FALSE(naive.last_query_skipped());
}

TEST(NaiveTest, RereadsListsPerCandidate) {
  auto index = BuildSample();
  XCleanOptions options;
  options.max_ed = 1;
  NaiveCleaner naive(*index, options);
  naive.Suggest(Q({"icdt"}));
  uint64_t single = naive.last_postings_read();
  naive.Suggest(Q({"icdt", "icdt"}));
  // Two slots: every candidate re-scans both slots' lists — the repeated
  // I/O Sec. V's single-pass design eliminates.
  EXPECT_GT(naive.last_postings_read(), 2 * single);
}

TEST(NaiveTest, EmptyQueryAndNoVariants) {
  auto index = BuildSample();
  NaiveCleaner naive(*index, XCleanOptions{});
  EXPECT_TRUE(naive.Suggest(Q({})).empty());
  EXPECT_TRUE(naive.Suggest(Q({"qqqqqqqq"})).empty());
}

}  // namespace
}  // namespace xclean
