#include "index/vocabulary.h"

#include <gtest/gtest.h>

#include <string>

namespace xclean {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("alpha"), 0u);
  EXPECT_EQ(v.Intern("beta"), 1u);
  EXPECT_EQ(v.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, FindAndContains) {
  Vocabulary v;
  v.Intern("alpha");
  EXPECT_EQ(v.Find("alpha"), 0u);
  EXPECT_EQ(v.Find("missing"), kInvalidToken);
  EXPECT_TRUE(v.Contains("alpha"));
  EXPECT_FALSE(v.Contains("missing"));
}

TEST(VocabularyTest, TokenLookup) {
  Vocabulary v;
  TokenId a = v.Intern("alpha");
  TokenId b = v.Intern("beta");
  EXPECT_EQ(v.token(a), "alpha");
  EXPECT_EQ(v.token(b), "beta");
  EXPECT_EQ(v.tokens(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(VocabularyTest, SurvivesManyInsertsAndRehashes) {
  Vocabulary v;
  for (int i = 0; i < 20000; ++i) {
    v.Intern("token" + std::to_string(i));
  }
  EXPECT_EQ(v.size(), 20000u);
  // Lookups after massive growth (vector reallocation + map rehash).
  for (int i = 0; i < 20000; i += 997) {
    std::string t = "token" + std::to_string(i);
    TokenId id = v.Find(t);
    ASSERT_NE(id, kInvalidToken);
    EXPECT_EQ(v.token(id), t);
  }
}

}  // namespace
}  // namespace xclean
