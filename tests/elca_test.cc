#include "core/elca.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/slca.h"
#include "xml/parser.h"

namespace xclean {
namespace {

XmlTree Parse(const char* xml) {
  Result<XmlTree> t = ParseXmlString(xml);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(ElcaTest, ClassicExclusiveWitnessCase) {
  //        a(0)
  //     b(1)      e(4)
  //   c(2) d(3)
  // k1 at {c, e}, k2 at {d, e}: SLCAs = {b?}: b contains c,d -> full;
  // e contains e,e -> full; minimal = {b, e}. ELCAs: a has exclusive
  // witnesses? a's witnesses all fall under full b or full e -> a is not
  // an ELCA. ELCA = {b, e}.
  XmlTree t = Parse("<a><b><c/><d/></b><e/></a>");
  auto elcas = ComputeElcas(t, {{2, 4}, {3, 4}});
  EXPECT_EQ(elcas, (std::vector<NodeId>{1, 4}));
}

TEST(ElcaTest, AncestorWithOwnWitnessIsElca) {
  //        a(0)
  //     b(1)     x(4)   <- k1 at x (directly under a), k2 at a? Use:
  //   c(2) d(3)
  // k1 at {c, x}, k2 at {d, x2=...}
  // Simpler canonical case: root has its own exclusive k1 witness.
  //   <a><b><c k1/><d k2/></b><x k1/><y k2/></a>
  // b is full (c,d). a is full. a's exclusive witnesses: x (k1, lowest
  // full ancestor a), y (k2, lowest full ancestor a) -> a is an ELCA too.
  XmlTree t = Parse("<a><b><c/><d/></b><x/><y/></a>");
  auto elcas = ComputeElcas(t, {{2, 4}, {3, 5}});
  EXPECT_EQ(elcas, (std::vector<NodeId>{0, 1}));
  // SLCA keeps only the minimal node.
  auto slcas = ComputeSlcas(t, {{2, 4}, {3, 5}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{1}));
}

TEST(ElcaTest, AncestorWithoutExclusiveWitnessIsNot) {
  XmlTree t = Parse("<a><b><c/><d/></b><x/></a>");
  // k1 at {c, x}, k2 at {d}: a is full but its k2 witnesses all sit under
  // full b -> not an ELCA.
  auto elcas = ComputeElcas(t, {{2, 4}, {3}});
  EXPECT_EQ(elcas, (std::vector<NodeId>{1}));
}

TEST(ElcaTest, EmptyInputs) {
  XmlTree t = Parse("<a><b/></a>");
  EXPECT_TRUE(ComputeElcas(t, {}).empty());
  EXPECT_TRUE(ComputeElcas(t, {{1}, {}}).empty());
}

TEST(ElcaTest, SingleList) {
  XmlTree t = Parse("<a><b><c/></b><d/></a>");
  // Every witness is its own exclusive witness; full nodes = witnesses +
  // ancestors; ELCAs = witnesses themselves (ancestors' witnesses are
  // blocked by the witness nodes... unless the ancestor IS a witness).
  auto elcas = ComputeElcas(t, {{2, 3}});
  EXPECT_EQ(elcas, (std::vector<NodeId>{2, 3}));
}

/// Properties on random trees: ELCA == brute force; SLCA ⊆ ELCA ⊆ full.
class ElcaPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ElcaPropertyTest, MatchesBruteForceAndInclusions) {
  const size_t num_lists = GetParam();
  Rng rng(7700 + num_lists);
  for (int round = 0; round < 60; ++round) {
    XmlTreeBuilder b;
    ASSERT_TRUE(b.BeginElement("r").ok());
    size_t opens = 1, total = 1;
    size_t target = 10 + rng.Uniform(70);
    while (total < target) {
      if (opens > 1 && rng.Bernoulli(0.45)) {
        ASSERT_TRUE(b.EndElement().ok());
        --opens;
      } else {
        ASSERT_TRUE(b.BeginElement("n").ok());
        ++opens;
        ++total;
      }
    }
    while (opens > 0) {
      ASSERT_TRUE(b.EndElement().ok());
      --opens;
    }
    Result<XmlTree> tr = std::move(b).Finish();
    ASSERT_TRUE(tr.ok());
    const XmlTree& t = tr.value();

    std::vector<std::vector<NodeId>> lists(num_lists);
    for (auto& list : lists) {
      size_t n = 1 + rng.Uniform(8);
      for (size_t i = 0; i < n; ++i) {
        list.push_back(static_cast<NodeId>(rng.Uniform(t.size())));
      }
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    std::vector<NodeId> elcas = ComputeElcas(t, lists);
    ASSERT_EQ(elcas, ComputeElcasBruteForce(t, lists)) << "round " << round;

    // Every SLCA is an ELCA.
    for (NodeId s : ComputeSlcas(t, lists)) {
      ASSERT_TRUE(std::binary_search(elcas.begin(), elcas.end(), s))
          << "SLCA " << s << " missing from ELCA set, round " << round;
    }
    // Every ELCA contains all lists.
    for (NodeId e : elcas) {
      for (const auto& list : lists) {
        auto it = std::lower_bound(list.begin(), list.end(), e);
        ASSERT_TRUE(it != list.end() && *it <= t.subtree_end(e));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ListCounts, ElcaPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace xclean
