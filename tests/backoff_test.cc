// Unit coverage for the retry/hedge substrate underneath ReplicaSet:
// capped exponential backoff (determinism in (options, seed), jitter
// bounds, cap, Reset semantics), ManualClock (monotonic, anchored at or
// after real time, CAS-max AdvanceTo), and the circuit-breaker state
// machine driven entirely by caller-supplied time — the pieces the replica
// simulation harness leans on for exact virtual-time trajectories.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "shard/replica_set.h"

namespace xclean {
namespace {

using shard::BreakerState;
using shard::CircuitBreaker;
using shard::CircuitBreakerOptions;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(BackoffTest, SameSeedReplaysSameDelays) {
  BackoffOptions options;
  Backoff a(options, 42);
  Backoff b(options, 42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next().count(), b.Next().count()) << "step " << i;
  }
}

TEST(BackoffTest, DelaysStayWithinJitterBandAndUnderCap) {
  BackoffOptions options;
  options.initial = milliseconds(2);
  options.cap = milliseconds(50);
  options.multiplier = 2.0;
  options.jitter = 0.5;
  Backoff backoff(options, 7);
  double base = static_cast<double>(options.initial.count());
  for (int i = 0; i < 20; ++i) {
    const nanoseconds delay = backoff.Next();
    // The k-th delay is drawn from [(1 - jitter) * base_k, base_k].
    EXPECT_GE(static_cast<double>(delay.count()), 0.5 * base - 1) << i;
    EXPECT_LE(static_cast<double>(delay.count()), base) << i;
    EXPECT_LE(delay, options.cap) << i;
    base = std::min(base * options.multiplier,
                    static_cast<double>(options.cap.count()));
  }
}

TEST(BackoffTest, ZeroJitterIsFullyDeterministicExponential) {
  BackoffOptions options;
  options.initial = milliseconds(2);
  options.cap = milliseconds(50);
  options.jitter = 0.0;
  Backoff backoff(options, 99);
  EXPECT_EQ(backoff.Next(), milliseconds(2));
  EXPECT_EQ(backoff.Next(), milliseconds(4));
  EXPECT_EQ(backoff.Next(), milliseconds(8));
  EXPECT_EQ(backoff.Next(), milliseconds(16));
  EXPECT_EQ(backoff.Next(), milliseconds(32));
  EXPECT_EQ(backoff.Next(), milliseconds(50));  // capped
  EXPECT_EQ(backoff.Next(), milliseconds(50));
}

TEST(BackoffTest, ResetRestartsTheExponentialSequence) {
  BackoffOptions options;
  options.jitter = 0.0;
  Backoff backoff(options, 1);
  backoff.Next();
  backoff.Next();
  backoff.Next();
  backoff.Reset();
  EXPECT_EQ(backoff.Next(), options.initial);
}

TEST(ManualClockTest, AnchoredAtOrAfterRealTimeAndMonotonic) {
  const auto real_before = std::chrono::steady_clock::now();
  ManualClock clock;
  EXPECT_GE(clock.Now(), real_before);

  const auto t0 = clock.Now();
  clock.Advance(milliseconds(250));
  EXPECT_EQ(clock.Now() - t0, milliseconds(250));

  // Negative/zero advances and backwards AdvanceTo are ignored.
  clock.Advance(nanoseconds(-5));
  clock.AdvanceTo(t0);
  EXPECT_EQ(clock.Now() - t0, milliseconds(250));

  clock.AdvanceTo(t0 + milliseconds(400));
  EXPECT_EQ(clock.Now() - t0, milliseconds(400));

  // SleepFor is Advance, not a real sleep.
  clock.SleepFor(milliseconds(100));
  EXPECT_EQ(clock.Now() - t0, milliseconds(500));
}

TEST(CircuitBreakerTest, TripsAfterMinSamplesOfStraightFailures) {
  CircuitBreakerOptions options;  // alpha 0.2, trip 0.5, min_samples 4
  CircuitBreaker breaker(options);
  ManualClock clock;

  // 1 - 0.8^n crosses 0.5 at n = 4, the same step min_samples unlocks
  // tripping — so exactly the 4th straight failure opens the breaker.
  for (int n = 1; n <= 3; ++n) {
    breaker.OnFailure(clock.Now());
    EXPECT_EQ(breaker.state(), BreakerState::kClosed) << "failure " << n;
    EXPECT_TRUE(breaker.WouldAllow(clock.Now()));
  }
  breaker.OnFailure(clock.Now());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.WouldAllow(clock.Now()));
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  CircuitBreakerOptions options;
  CircuitBreaker breaker(options);
  ManualClock clock;
  for (int n = 0; n < 4; ++n) breaker.OnFailure(clock.Now());
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Still open inside the cooldown window.
  clock.Advance(options.open_cooldown - milliseconds(1));
  EXPECT_FALSE(breaker.WouldAllow(clock.Now()));
  EXPECT_FALSE(breaker.Allow(clock.Now()));

  // Cooldown elapsed: exactly one probe is granted (Allow transitions to
  // half-open); a failed probe re-opens and restarts the cooldown.
  clock.Advance(milliseconds(2));
  EXPECT_TRUE(breaker.Allow(clock.Now()));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.OnFailure(clock.Now());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.WouldAllow(clock.Now()));

  // Second cooldown, successful probe: closed, and the error history is
  // forgiven — the next single failure must not re-trip.
  clock.Advance(options.open_cooldown + milliseconds(1));
  EXPECT_TRUE(breaker.Allow(clock.Now()));
  breaker.OnSuccess(clock.Now(), /*latency_ms=*/1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.OnFailure(clock.Now());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, SuccessesDiluteFailuresBelowTrip) {
  CircuitBreakerOptions options;
  CircuitBreaker breaker(options);
  ManualClock clock;
  // One failure in three holds the error EWMA under the trip line even at
  // its post-failure peak: the steady cycle solves
  // e = 0.8^2 * (0.8 * e + 0.2) -> e ~= 0.41 < 0.5. (A 50% alternating
  // pattern would overshoot to ~0.56 right after each failure and trip —
  // the EWMA is deliberately spikier than the long-run rate.)
  for (int n = 0; n < 48; ++n) {
    if (n % 3 == 2) {
      breaker.OnFailure(clock.Now());
    } else {
      breaker.OnSuccess(clock.Now(), 1.0);
    }
    clock.Advance(milliseconds(1));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_LT(breaker.error_rate(), 0.5);
}

TEST(CircuitBreakerTest, ReleaseProbeHandsBackAnUnresolvedProbe) {
  CircuitBreakerOptions options;
  CircuitBreaker breaker(options);
  ManualClock clock;

  // Closed admissions are not probes.
  bool probe = true;
  EXPECT_TRUE(breaker.Allow(clock.Now(), &probe));
  EXPECT_FALSE(probe);

  for (int n = 0; n < 4; ++n) breaker.OnFailure(clock.Now());
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapsed: the admission is the half-open probe, and while it
  // is outstanding no second admission exists.
  clock.Advance(options.open_cooldown + milliseconds(1));
  ASSERT_TRUE(breaker.Allow(clock.Now(), &probe));
  EXPECT_TRUE(probe);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.WouldAllow(clock.Now()));
  EXPECT_FALSE(breaker.Allow(clock.Now()));

  // The attempt never ran (hedge cap or pool refusal) or resolved neither
  // way (a shed): handing the probe back re-arms half-open instead of
  // excluding the replica from rotation forever.
  breaker.ReleaseProbe();
  EXPECT_TRUE(breaker.WouldAllow(clock.Now()));
  probe = false;
  EXPECT_TRUE(breaker.Allow(clock.Now(), &probe));
  EXPECT_TRUE(probe);
  breaker.OnSuccess(clock.Now(), /*latency_ms=*/1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, LateLoserFailureWhileOpenIsIgnored) {
  CircuitBreakerOptions options;
  CircuitBreaker breaker(options);
  ManualClock clock;
  for (int n = 0; n < 4; ++n) breaker.OnFailure(clock.Now());
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  const uint64_t opens = breaker.opens();

  // A cancelled hedge loser reporting its failure after the trip must not
  // extend the cooldown or double-count the open.
  breaker.OnFailure(clock.Now());
  EXPECT_EQ(breaker.opens(), opens);
  clock.Advance(options.open_cooldown + milliseconds(1));
  EXPECT_TRUE(breaker.WouldAllow(clock.Now()));
}

}  // namespace
}  // namespace xclean
