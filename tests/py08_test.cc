#include "core/py08.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/xclean.h"
#include "xml/parser.h"

namespace xclean {
namespace {

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

/// The paper's Figure 1 scenario: the user queries "health insurrance";
/// both "insurance" and "instance" are candidate corrections. "insurance"
/// co-occurs with "health" inside records; "instance" is rarer and lives
/// elsewhere. PY08 must prefer the rare disconnected word, XClean the
/// connected one.
std::unique_ptr<XmlIndex> BuildBiasCorpus() {
  std::string xml = "<db>";
  // Many records about health insurance (popular, connected).
  for (int i = 0; i < 30; ++i) {
    xml += "<record><text>health insurance policy coverage</text></record>";
  }
  // A single record mentioning "instance" in an unrelated technical note
  // (rare -> high idf under PY08's max-tfidf scoring).
  xml += "<record><text>instance</text></record>";
  // Some filler so df(health) != N.
  for (int i = 0; i < 10; ++i) {
    xml += "<record><text>claims processing office</text></record>";
  }
  xml += "</db>";
  Result<XmlTree> tree = ParseXmlString(xml);
  EXPECT_TRUE(tree.ok());
  IndexOptions options;
  options.fastss_max_ed = 3;  // "insurrance" -> "instance" is ed 3
  return XmlIndex::Build(std::move(tree).value(), options);
}

TEST(Py08BiasTest, PrefersRareDisconnectedToken) {
  auto index = BuildBiasCorpus();
  Py08Options options;
  options.max_ed = 3;
  Py08Cleaner py08(*index, options);
  std::vector<Suggestion> s = py08.Suggest(Q({"health", "insurrance"}));
  ASSERT_FALSE(s.empty());
  // Rare-token bias: "instance" (df = 1, tf/|t| = 1) outscores "insurance"
  // (df = 30, tf/|t| = 1/4) despite the larger edit distance not being
  // enough to save it, and despite having no connection to "health".
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"health", "instance"}));
  EXPECT_EQ(s[0].entity_count, 0u);  // PY08 never checks results
}

TEST(Py08BiasTest, XCleanResistsTheBias) {
  auto index = BuildBiasCorpus();
  XCleanOptions options;
  options.max_ed = 3;
  options.gamma = 0;
  XClean cleaner(*index, options);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"health", "insurrance"}));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"health", "insurance"}));
  // And every XClean suggestion is backed by actual results.
  for (const Suggestion& sg : s) EXPECT_GT(sg.entity_count, 0u);
}

TEST(Py08Test, ScoreIrIsMaxTfIdf) {
  auto index = BuildBiasCorpus();
  Py08Cleaner py08(*index, Py08Options{});
  TokenId instance = index->vocabulary().Find("instance");
  TokenId insurance = index->vocabulary().Find("insurance");
  double n = index->text_node_count();
  // instance: count 1, |t| = 1, df 1.
  EXPECT_NEAR(py08.ScoreIr(instance), 1.0 * std::log(n / 1.0), 1e-12);
  // insurance: count 1, |t| = 4, df 30.
  EXPECT_NEAR(py08.ScoreIr(insurance), 0.25 * std::log(n / 30.0), 1e-12);
}

TEST(Py08Test, KBestEnumerationIsSorted) {
  auto index = BuildBiasCorpus();
  Py08Options options;
  options.max_ed = 3;
  options.top_k = 10;
  Py08Cleaner py08(*index, options);
  std::vector<Suggestion> s = py08.Suggest(Q({"health", "insurrance"}));
  ASSERT_GE(s.size(), 2u);
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s[i - 1].score, s[i].score);
  }
  // No duplicate candidates.
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t j = i + 1; j < s.size(); ++j) {
      EXPECT_NE(s[i].words, s[j].words);
    }
  }
}

TEST(Py08Test, GammaCapsVariantsPerSlot) {
  auto index = BuildBiasCorpus();
  Py08Options wide;
  wide.max_ed = 3;
  wide.gamma = 0;
  Py08Options narrow = wide;
  narrow.gamma = 1;
  Py08Cleaner full(*index, wide);
  Py08Cleaner capped(*index, narrow);
  auto s_full = full.Suggest(Q({"health", "insurrance"}));
  auto s_capped = capped.Suggest(Q({"health", "insurrance"}));
  // With one segment per keyword only a single combination exists.
  EXPECT_EQ(s_capped.size(), 1u);
  EXPECT_GE(s_full.size(), s_capped.size());
}

TEST(Py08Test, EmptyQueryAndNoVariants) {
  auto index = BuildBiasCorpus();
  Py08Cleaner py08(*index, Py08Options{});
  EXPECT_TRUE(py08.Suggest(Q({})).empty());
  EXPECT_TRUE(py08.Suggest(Q({"zzzzzzzzz"})).empty());
}

TEST(Py08Test, CleanKeywordStillRanksByIr) {
  auto index = BuildBiasCorpus();
  Py08Cleaner py08(*index, Py08Options{});
  std::vector<Suggestion> s = py08.Suggest(Q({"health"}));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"health"}));
}

}  // namespace
}  // namespace xclean
