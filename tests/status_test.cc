#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad tag at line 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad tag at line 7");
  EXPECT_EQ(s.ToString(), "ParseError: bad tag at line 7");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, DataLossCarriesCodeAndRendersName) {
  const Status s = Status::DataLoss("rpc frame: payload checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DataLoss: rpc frame: payload checksum mismatch");
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::NotFound("gone");
  Status copy = s;
  EXPECT_EQ(copy.message(), "gone");
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, NonDefaultConstructibleValue) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> r(NoDefault(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 3);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace xclean
