#include "core/accumulator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace xclean {
namespace {

TEST(CandidateKeyTest, EncodeDecodeRoundTrip) {
  std::vector<TokenId> tokens = {1, 99999, 0, kInvalidToken};
  EXPECT_EQ(DecodeCandidate(EncodeCandidate(tokens)), tokens);
  EXPECT_EQ(DecodeCandidate(EncodeCandidate({})), std::vector<TokenId>{});
}

TEST(CandidateKeyTest, DistinctCandidatesDistinctKeys) {
  EXPECT_NE(EncodeCandidate({1, 2}), EncodeCandidate({2, 1}));
  EXPECT_NE(EncodeCandidate({1}), EncodeCandidate({1, 0}));
}

TEST(AccumulatorTest, UnboundedNeverEvicts) {
  AccumulatorTable table(0);
  for (TokenId i = 0; i < 5000; ++i) {
    CandidateState* s = table.GetOrCreate(EncodeCandidate({i}), 0.5);
    s->sum += 1.0;
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_EQ(table.eviction_count(), 0u);
}

TEST(AccumulatorTest, GetOrCreateReturnsSameState) {
  AccumulatorTable table(10);
  CandidateState* a = table.GetOrCreate(EncodeCandidate({1}), 0.5);
  a->sum = 7.0;
  CandidateState* b = table.GetOrCreate(EncodeCandidate({1}), 0.9);
  EXPECT_EQ(b->sum, 7.0);
  EXPECT_EQ(b->error_weight, 0.5);  // creation-time weight kept
}

TEST(AccumulatorTest, EvictsLowestEstimate) {
  AccumulatorTable table(2);
  CandidateState* a = table.GetOrCreate(EncodeCandidate({1}), 1.0);
  a->sum = 10.0;  // estimate 10
  CandidateState* b = table.GetOrCreate(EncodeCandidate({2}), 1.0);
  b->sum = 0.1;  // estimate 0.1 -> victim
  table.GetOrCreate(EncodeCandidate({3}), 1.0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.eviction_count(), 1u);
  EXPECT_NE(table.Find(EncodeCandidate({1})), nullptr);
  EXPECT_EQ(table.Find(EncodeCandidate({2})), nullptr);
  EXPECT_NE(table.Find(EncodeCandidate({3})), nullptr);
}

TEST(AccumulatorTest, ErrorWeightAffectsEstimate) {
  AccumulatorTable table(2);
  // Same sum, but candidate 1's error weight makes it worth less.
  CandidateState* a = table.GetOrCreate(EncodeCandidate({1}), 0.001);
  a->sum = 5.0;  // estimate 0.005
  CandidateState* b = table.GetOrCreate(EncodeCandidate({2}), 1.0);
  b->sum = 5.0;  // estimate 5
  table.GetOrCreate(EncodeCandidate({3}), 1.0);
  EXPECT_EQ(table.Find(EncodeCandidate({1})), nullptr);
  EXPECT_NE(table.Find(EncodeCandidate({2})), nullptr);
}

TEST(AccumulatorTest, EvictedCandidateRestartsFromZero) {
  AccumulatorTable table(1);
  CandidateState* a = table.GetOrCreate(EncodeCandidate({1}), 1.0);
  a->sum = 3.0;
  table.GetOrCreate(EncodeCandidate({2}), 1.0);  // evicts 1
  CandidateState* again = table.GetOrCreate(EncodeCandidate({1}), 1.0);
  EXPECT_EQ(again->sum, 0.0);
  EXPECT_EQ(table.eviction_count(), 2u);
}

TEST(AccumulatorTest, FindMissReturnsNull) {
  AccumulatorTable table(4);
  EXPECT_EQ(table.Find(EncodeCandidate({42})), nullptr);
}

/// Regression test pinning the documented eviction rule: the victim is the
/// entry with the lowest estimate (error_weight * sum), and among tied
/// estimates the lexicographically smallest token sequence loses. The
/// bounded evaluation is heuristic, but it must be deterministic — the
/// differential harness relies on run-to-run reproducibility.
TEST(AccumulatorTest, EqualEstimateTieBreaksOnLexSmallestKey) {
  AccumulatorTable table(3);
  // Insert in an order where neither "first inserted" nor "last inserted"
  // matches the documented victim, so any drift from the rule fails.
  for (const std::vector<TokenId>& key :
       {std::vector<TokenId>{7, 1}, {2, 9}, {2, 3}}) {
    CandidateState* s = table.GetOrCreate(EncodeCandidate(key), 0.5);
    s->sum = 4.0;  // identical estimate 2.0 for all three
  }
  table.GetOrCreate(EncodeCandidate({8, 8}), 1.0);
  EXPECT_EQ(table.eviction_count(), 1u);
  // {2, 3} is lexicographically smallest among the tie -> evicted.
  EXPECT_EQ(table.Find(EncodeCandidate({2, 3})), nullptr);
  EXPECT_NE(table.Find(EncodeCandidate({2, 9})), nullptr);
  EXPECT_NE(table.Find(EncodeCandidate({7, 1})), nullptr);
  EXPECT_NE(table.Find(EncodeCandidate({8, 8})), nullptr);
}

TEST(AccumulatorTest, TieBreakIsInsertionOrderIndependent) {
  std::vector<std::vector<TokenId>> keys = {{5}, {3}, {4}};
  std::sort(keys.begin(), keys.end());
  do {
    AccumulatorTable table(3);
    for (const std::vector<TokenId>& key : keys) {
      CandidateState* s = table.GetOrCreate(EncodeCandidate(key), 1.0);
      s->sum = 1.0;
    }
    table.GetOrCreate(EncodeCandidate({9}), 1.0);
    EXPECT_EQ(table.Find(EncodeCandidate({3})), nullptr)
        << "insertion order changed the victim";
    EXPECT_NE(table.Find(EncodeCandidate({4})), nullptr);
    EXPECT_NE(table.Find(EncodeCandidate({5})), nullptr);
  } while (std::next_permutation(keys.begin(), keys.end()));
}

}  // namespace
}  // namespace xclean
