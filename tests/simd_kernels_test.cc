#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/varint.h"
#include "core/xclean.h"
#include "index/postings.h"
#include "text/edit_distance.h"
#include "text/fastss.h"
#include "xml/parser.h"

namespace xclean {
namespace {

/// Differential tests for the runtime-dispatched hot-path kernels: every
/// vector tier must produce bit-identical outputs to its scalar twin —
/// edit distances, decoded varint groups, window-scan counts, lower-bound
/// positions, FNV lanes, cursor positions, FastSS match sets, and whole
/// XClean suggestion lists. ScopedLevel clamps requests above the running
/// CPU's capability, so iterating all tiers is safe everywhere (clamped
/// duplicates just re-run the best supported tier).

const simd::Level kAllLevels[] = {simd::Level::kScalar, simd::Level::kSse42,
                                  simd::Level::kAvx2, simd::Level::kNeon};

std::string RandomString(Rng& rng, size_t len, uint32_t sigma) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(sigma)));
  }
  return s;
}

TEST(SimdDispatchTest, ScopedLevelOverridesAndRestores) {
  const simd::Level before = simd::ActiveLevel();
  {
    simd::ScopedLevel scalar(simd::Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
    {
      simd::ScopedLevel best(simd::DetectedLevel());
      EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
    }
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(SimdDispatchTest, OverridesAboveDetectedAreClamped) {
  for (simd::Level level : kAllLevels) {
    simd::ScopedLevel scoped(level);
    EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
              static_cast<int>(simd::DetectedLevel()))
        << LevelName(level);
  }
}

TEST(SimdDispatchTest, ForceScalarEnvDemotesActiveLevel) {
  // The kernels-scalar CI leg runs this whole suite with
  // XCLEAN_FORCE_SCALAR=1: the process must have come up on the scalar
  // tier (ScopedLevel overrides in other tests restore on scope exit).
  if (simd::ForceScalarFromEnv()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  } else {
    EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
  }
}

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(simd::Level::kSse42), "sse4.2");
  EXPECT_STREQ(LevelName(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(LevelName(simd::Level::kNeon), "neon");
}

// --- edit distance --------------------------------------------------------

TEST(SimdEditDistanceTest, ExhaustiveSmallAlphabet) {
  // Every pair of strings over {a,b} with length <= 4: the bit-parallel
  // path must equal the scalar DP for the full and every bounded variant.
  std::vector<std::string> all{""};
  for (size_t len = 1; len <= 4; ++len) {
    const size_t start = all.size() - (size_t{1} << (len - 1));
    std::vector<std::string> next;
    for (size_t i = start; i < all.size(); ++i) {
      next.push_back(all[i] + "a");
      next.push_back(all[i] + "b");
    }
    all.insert(all.end(), next.begin(), next.end());
  }
  for (simd::Level level : kAllLevels) {
    simd::ScopedLevel scoped(level);
    for (const std::string& a : all) {
      for (const std::string& b : all) {
        EXPECT_EQ(EditDistance(a, b), EditDistanceScalar(a, b))
            << LevelName(level) << " \"" << a << "\" vs \"" << b << "\"";
        for (uint32_t max_ed : {0u, 1u, 2u, 3u, 4u}) {
          EXPECT_EQ(EditDistanceBounded(a, b, max_ed),
                    EditDistanceBoundedScalar(a, b, max_ed))
              << LevelName(level) << " \"" << a << "\" vs \"" << b
              << "\" k=" << max_ed;
        }
      }
    }
  }
}

TEST(SimdEditDistanceTest, WordBoundaryPatternLengths) {
  // Pattern lengths that straddle the 64-bit word: 0, 1, 63, 64, 65. The
  // 65-length patterns take the scalar fallback inside the dispatcher and
  // must still agree.
  Rng rng(2024);
  const size_t kLens[] = {0, 1, 63, 64, 65};
  for (simd::Level level : kAllLevels) {
    simd::ScopedLevel scoped(level);
    for (size_t ls : kLens) {
      for (size_t lt : kLens) {
        for (int round = 0; round < 20; ++round) {
          std::string s = RandomString(rng, ls, 3);
          std::string t = RandomString(rng, lt, 3);
          EXPECT_EQ(EditDistance(s, t), EditDistanceScalar(s, t))
              << LevelName(level) << " |s|=" << ls << " |t|=" << lt;
          for (uint32_t max_ed : {0u, 1u, 2u, 5u, 64u, 100u}) {
            EXPECT_EQ(EditDistanceBounded(s, t, max_ed),
                      EditDistanceBoundedScalar(s, t, max_ed))
                << LevelName(level) << " |s|=" << ls << " |t|=" << lt
                << " k=" << max_ed;
          }
        }
      }
    }
  }
}

TEST(SimdEditDistanceTest, RandomizedDifferential) {
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::string s = RandomString(rng, rng.Uniform(80), 4);
    std::string t = RandomString(rng, rng.Uniform(80), 4);
    const uint32_t max_ed = static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t want_full = EditDistanceScalar(s, t);
    const uint32_t want_bounded = EditDistanceBoundedScalar(s, t, max_ed);
    for (simd::Level level : kAllLevels) {
      simd::ScopedLevel scoped(level);
      EXPECT_EQ(EditDistance(s, t), want_full)
          << LevelName(level) << " \"" << s << "\" vs \"" << t << "\"";
      EXPECT_EQ(EditDistanceBounded(s, t, max_ed), want_bounded)
          << LevelName(level) << " \"" << s << "\" vs \"" << t
          << "\" k=" << max_ed;
    }
  }
}

// --- varint group decode --------------------------------------------------

std::string EncodeValues(const std::vector<uint32_t>& values) {
  std::string buf;
  for (uint32_t v : values) PutVarint32(buf, v);
  return buf;
}

void ExpectGroupDecodesEqual(const std::string& buf, size_t count) {
  std::vector<uint32_t> want(count + 1, 0xDEADBEEF);
  const char* want_end = GetVarint32GroupScalar(
      buf.data(), buf.data() + buf.size(), want.data(), count);
  for (simd::Level level : kAllLevels) {
    std::vector<uint32_t> got(count + 1, 0xDEADBEEF);
    const char* got_end = simd::DecodeVarint32Group(
        level, buf.data(), buf.data() + buf.size(), got.data(), count);
    EXPECT_EQ(got_end, want_end) << LevelName(level) << " count=" << count;
    if (want_end != nullptr && got_end != nullptr) {
      EXPECT_EQ(got, want) << LevelName(level) << " count=" << count;
    }
  }
}

TEST(SimdVarintTest, GroupTailsAtEveryCount) {
  // Counts 0..40 cover every residue of the 8- and 16-value vector groups,
  // over a stream of one-byte varints (the vector fast path) with no slack
  // after the last value — the 16/32-byte loads must refuse to over-read.
  Rng rng(7);
  for (size_t count = 0; count <= 40; ++count) {
    std::vector<uint32_t> values;
    for (size_t i = 0; i < count; ++i) {
      values.push_back(static_cast<uint32_t>(rng.Uniform(128)));
    }
    ExpectGroupDecodesEqual(EncodeValues(values), count);
  }
}

TEST(SimdVarintTest, MixedWidthStreams) {
  Rng rng(13);
  for (int round = 0; round < 300; ++round) {
    const size_t count = rng.Uniform(50);
    std::vector<uint32_t> values;
    for (size_t i = 0; i < count; ++i) {
      switch (rng.Uniform(4)) {
        case 0:
          values.push_back(static_cast<uint32_t>(rng.Uniform(128)));
          break;
        case 1:
          values.push_back(static_cast<uint32_t>(rng.Uniform(1u << 14)));
          break;
        case 2:
          values.push_back(static_cast<uint32_t>(rng.Uniform(1u << 28)));
          break;
        default:
          values.push_back(static_cast<uint32_t>(rng.Next64()));
          break;
      }
    }
    ExpectGroupDecodesEqual(EncodeValues(values), count);
  }
}

TEST(SimdVarintTest, TruncationFailsOnEveryTier) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 24; ++i) values.push_back(i * 300);
  const std::string buf = EncodeValues(values);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const std::string trunc = buf.substr(0, cut);
    std::vector<uint32_t> out(values.size());
    for (simd::Level level : kAllLevels) {
      EXPECT_EQ(simd::DecodeVarint32Group(level, trunc.data(),
                                          trunc.data() + trunc.size(),
                                          out.data(), values.size()),
                nullptr)
          << LevelName(level) << " cut=" << cut;
    }
  }
}

TEST(SimdVarintTest, OverflowFailsOnEveryTier) {
  // A 64-bit value above 2^32 is a valid varint64 but not a varint32.
  std::string buf;
  PutVarint64(buf, 0x1FFFFFFFFull);
  uint32_t out = 0;
  for (simd::Level level : kAllLevels) {
    EXPECT_EQ(simd::DecodeVarint32Group(level, buf.data(),
                                        buf.data() + buf.size(), &out, 1),
              nullptr)
        << LevelName(level);
  }
}

TEST(SimdVarintTest, PublicGroupEntryPointMatchesScalar) {
  Rng rng(21);
  std::vector<uint32_t> values;
  for (int i = 0; i < 37; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(100)));
  }
  const std::string buf = EncodeValues(values);
  std::vector<uint32_t> want(values.size()), got(values.size());
  const char* we = GetVarint32GroupScalar(buf.data(), buf.data() + buf.size(),
                                          want.data(), values.size());
  for (simd::Level level : kAllLevels) {
    simd::ScopedLevel scoped(level);
    const char* ge = GetVarint32Group(buf.data(), buf.data() + buf.size(),
                                      got.data(), values.size());
    EXPECT_EQ(ge, we) << LevelName(level);
    EXPECT_EQ(got, want) << LevelName(level);
  }
}

// --- window scan / lower bound --------------------------------------------

TEST(SimdWindowScanTest, CountKeysBelowMatchesScalarOnSortedRecords) {
  Rng rng(31);
  for (int round = 0; round < 400; ++round) {
    const size_t size = rng.Uniform(40);
    std::vector<Posting> recs(size);
    uint32_t key = 0;
    for (size_t i = 0; i < size; ++i) {
      key += static_cast<uint32_t>(rng.Uniform(5));  // duplicates allowed
      recs[i] = Posting{key, static_cast<uint32_t>(rng.Next64())};
    }
    // Targets around every key plus extremes (0, max) probe each boundary.
    std::vector<uint32_t> targets{0, 1, key, key + 1, 0xFFFFFFFFu};
    for (size_t i = 0; i < size; ++i) targets.push_back(recs[i].node);
    for (uint32_t target : targets) {
      const size_t want =
          simd::CountKeysBelowStride8(simd::Level::kScalar, recs.data(),
                                      recs.size(), target);
      for (simd::Level level : kAllLevels) {
        EXPECT_EQ(simd::CountKeysBelowStride8(level, recs.data(), recs.size(),
                                              target),
                  want)
            << LevelName(level) << " size=" << size << " target=" << target;
      }
    }
  }
}

struct HashRecord {
  uint64_t hash;
  uint32_t word_id;
  uint32_t pad;
};
static_assert(sizeof(HashRecord) == 16, "kernel assumes 16-byte stride");

TEST(SimdLowerBoundTest, LowerBoundKey64MatchesScalarAndStd) {
  Rng rng(41);
  for (int round = 0; round < 400; ++round) {
    const size_t size = rng.Uniform(48);
    std::vector<uint64_t> keys(size);
    for (size_t i = 0; i < size; ++i) {
      // Mix small keys, sign-bit-set keys, and duplicates: the AVX2 tier
      // compares unsigned via a sign flip, which these would expose.
      switch (rng.Uniform(3)) {
        case 0:
          keys[i] = rng.Uniform(16);
          break;
        case 1:
          keys[i] = rng.Next64() | 0x8000000000000000ull;
          break;
        default:
          keys[i] = rng.Next64();
          break;
      }
    }
    std::sort(keys.begin(), keys.end());
    std::vector<HashRecord> recs(size);
    for (size_t i = 0; i < size; ++i) {
      recs[i] = HashRecord{keys[i], static_cast<uint32_t>(i), 0};
    }
    std::vector<uint64_t> needles{0, 1, ~uint64_t{0}, 0x8000000000000000ull};
    for (size_t i = 0; i < size; ++i) {
      needles.push_back(keys[i]);
      needles.push_back(keys[i] + 1);
    }
    for (uint64_t needle : needles) {
      const size_t want = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), needle) - keys.begin());
      for (simd::Level level : kAllLevels) {
        EXPECT_EQ(simd::LowerBoundKey64Stride16(level, recs.data(),
                                                recs.size(), needle),
                  want)
            << LevelName(level) << " size=" << size << " needle=" << needle;
      }
    }
  }
}

// --- FNV-1a lanes ---------------------------------------------------------

uint64_t Fnv1aReference(uint64_t seed, std::string_view s) {
  uint64_t h = seed;
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

TEST(SimdFnvTest, Batch4MatchesReferenceFold) {
  Rng rng(51);
  for (int round = 0; round < 500; ++round) {
    std::string storage[4];
    std::string_view in[4];
    for (int l = 0; l < 4; ++l) {
      // Lengths deliberately uneven, including empty, so lane freezing is
      // exercised every round.
      storage[l] = RandomString(rng, rng.Uniform(24), 26);
      in[l] = storage[l];
    }
    const uint64_t seed = rng.Next64();
    for (simd::Level level : kAllLevels) {
      uint64_t out[4] = {0, 0, 0, 0};
      simd::Fnv1aBatch4(level, seed, in, out);
      for (int l = 0; l < 4; ++l) {
        EXPECT_EQ(out[l], Fnv1aReference(seed, in[l]))
            << LevelName(level) << " lane " << l << " \"" << storage[l]
            << "\"";
      }
    }
  }
}

// --- posting cursor -------------------------------------------------------

TEST(SimdPostingCursorTest, SkipToPositionsAgreeAcrossLevels) {
  Rng rng(61);
  for (int round = 0; round < 100; ++round) {
    const size_t size = rng.Uniform(300);
    std::vector<Posting> postings(size);
    uint32_t node = 0;
    for (size_t i = 0; i < size; ++i) {
      node += 1 + static_cast<uint32_t>(rng.Uniform(9));
      postings[i] = Posting{node, 1 + static_cast<uint32_t>(rng.Uniform(4))};
    }
    PostingList list(std::move(postings));
    // One shared random skip script replayed under every level.
    std::vector<NodeId> script;
    uint32_t t = 0;
    for (int k = 0; k < 40; ++k) {
      t += static_cast<uint32_t>(rng.Uniform(node / 8 + 2));
      script.push_back(t);
    }
    std::vector<size_t> want;
    {
      simd::ScopedLevel scoped(simd::Level::kScalar);
      PostingCursor cursor(list);
      for (NodeId target : script) {
        cursor.SkipTo(target);
        want.push_back(list.size() - cursor.remaining());
      }
    }
    for (simd::Level level : kAllLevels) {
      simd::ScopedLevel scoped(level);
      PostingCursor cursor(list);
      for (size_t k = 0; k < script.size(); ++k) {
        cursor.SkipTo(script[k]);
        EXPECT_EQ(list.size() - cursor.remaining(), want[k])
            << LevelName(level) << " skip " << k << " target=" << script[k];
      }
    }
  }
}

// --- FastSS ---------------------------------------------------------------

TEST(SimdFastSsTest, BuildAndFindAgreeAcrossLevels) {
  Rng rng(71);
  std::vector<std::string> words;
  for (int i = 0; i < 300; ++i) {
    words.push_back(RandomString(rng, 3 + rng.Uniform(14), 5));
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  auto matches_for = [&](simd::Level level) {
    simd::ScopedLevel scoped(level);
    FastSsIndex index;
    index.Build(words);
    std::vector<std::vector<FastSsIndex::Match>> out;
    for (int q = 0; q < 60; ++q) {
      Rng qrng(500 + q);
      std::string query = RandomString(qrng, 2 + qrng.Uniform(14), 5);
      auto matches = index.Find(query, 2);
      std::sort(matches.begin(), matches.end(),
                [](const FastSsIndex::Match& a, const FastSsIndex::Match& b) {
                  return a.word_id < b.word_id;
                });
      out.push_back(std::move(matches));
    }
    return std::make_pair(index.posting_count(), std::move(out));
  };

  const auto want = matches_for(simd::Level::kScalar);
  for (simd::Level level : kAllLevels) {
    const auto got = matches_for(level);
    EXPECT_EQ(got.first, want.first) << LevelName(level);
    ASSERT_EQ(got.second.size(), want.second.size()) << LevelName(level);
    for (size_t q = 0; q < want.second.size(); ++q) {
      ASSERT_EQ(got.second[q].size(), want.second[q].size())
          << LevelName(level) << " query " << q;
      for (size_t m = 0; m < want.second[q].size(); ++m) {
        EXPECT_EQ(got.second[q][m].word_id, want.second[q][m].word_id)
            << LevelName(level) << " query " << q;
        EXPECT_EQ(got.second[q][m].distance, want.second[q][m].distance)
            << LevelName(level) << " query " << q;
      }
    }
  }
}

// --- whole-pipeline equivalence -------------------------------------------

std::unique_ptr<XmlIndex> SmallCorpus(uint64_t seed) {
  static const char* kWords[] = {"tree",  "trees", "trie",  "tried", "three",
                                 "icde",  "icdt",  "index", "night", "light",
                                 "sight", "graph", "grape", "query", "quern"};
  Rng rng(seed);
  XmlTreeBuilder b;
  EXPECT_TRUE(b.BeginElement("root").ok());
  const uint64_t sections = 2 + rng.Uniform(4);
  for (uint64_t s = 0; s < sections; ++s) {
    EXPECT_TRUE(b.BeginElement(rng.Bernoulli(0.5) ? "sec" : "chap").ok());
    const uint64_t items = 1 + rng.Uniform(5);
    for (uint64_t i = 0; i < items; ++i) {
      EXPECT_TRUE(b.BeginElement("item").ok());
      const uint64_t nwords = 1 + rng.Uniform(6);
      std::string text;
      for (uint64_t w = 0; w < nwords; ++w) {
        if (!text.empty()) text += " ";
        text += kWords[rng.Uniform(std::size(kWords))];
      }
      EXPECT_TRUE(b.AddText(text).ok());
      EXPECT_TRUE(b.EndElement().ok());
    }
    EXPECT_TRUE(b.EndElement().ok());
  }
  EXPECT_TRUE(b.EndElement().ok());
  Result<XmlTree> tree = std::move(b).Finish();
  EXPECT_TRUE(tree.ok());
  return XmlIndex::Build(std::move(tree).value());
}

class SimdPipelineTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(SimdPipelineTest, SuggestionsAreIdenticalAcrossLevels) {
  // End-to-end: the same index queried under every tier must return the
  // same suggestions with bit-identical scores (the kernels feed variant
  // generation, candidate verification, posting skips and intersections —
  // any divergence surfaces here). Queries include misspellings, clean
  // hits, a single keyword (singleton intersections) and nonsense (empty
  // intersections).
  static const char* kQueries[] = {"tree icde",   "tres",        "grap quer",
                                   "night",       "trie icdt",   "three light",
                                   "inde",        "tree query",  "sigt grape",
                                   "zzzzqq",      "tree zzzzqq", "q"};
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto index = SmallCorpus(seed);
    XCleanOptions options;
    options.semantics = GetParam();
    XClean algorithm(*index, options);
    for (const char* text : kQueries) {
      const Query query = ParseQuery(text, index->tokenizer());
      std::vector<Suggestion> want;
      {
        simd::ScopedLevel scoped(simd::Level::kScalar);
        want = algorithm.Suggest(query);
      }
      for (simd::Level level : kAllLevels) {
        simd::ScopedLevel scoped(level);
        const std::vector<Suggestion> got = algorithm.Suggest(query);
        ASSERT_EQ(got.size(), want.size())
            << LevelName(level) << " seed=" << seed << " \"" << text << "\"";
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i].words, want[i].words)
              << LevelName(level) << " seed=" << seed << " \"" << text
              << "\" rank " << i;
          // Bit-identical, not approximately equal: every kernel tier
          // computes the same intermediate values.
          EXPECT_EQ(got[i].score, want[i].score)
              << LevelName(level) << " seed=" << seed << " \"" << text
              << "\" rank " << i;
          EXPECT_EQ(got[i].entity_count, want[i].entity_count)
              << LevelName(level) << " seed=" << seed << " \"" << text
              << "\" rank " << i;
          EXPECT_EQ(got[i].result_type, want[i].result_type)
              << LevelName(level) << " seed=" << seed << " \"" << text
              << "\" rank " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, SimdPipelineTest,
                         ::testing::Values(Semantics::kNodeType,
                                           Semantics::kSlca,
                                           Semantics::kElca));

}  // namespace
}  // namespace xclean
