#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace xclean {
namespace {

Suggestion S(std::vector<std::string> words) {
  Suggestion s;
  s.words = std::move(words);
  return s;
}

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

TEST(MetricsTest, RankOfTruth) {
  std::vector<Suggestion> suggestions = {S({"aaa"}), S({"bbb"}), S({"ccc"})};
  EXPECT_EQ(RankOfTruth(suggestions, Q({"aaa"})), 1u);
  EXPECT_EQ(RankOfTruth(suggestions, Q({"ccc"})), 3u);
  EXPECT_EQ(RankOfTruth(suggestions, Q({"zzz"})), 0u);
  EXPECT_EQ(RankOfTruth({}, Q({"aaa"})), 0u);
}

TEST(MetricsTest, ReciprocalRank) {
  std::vector<Suggestion> suggestions = {S({"aaa"}), S({"bbb"})};
  EXPECT_DOUBLE_EQ(ReciprocalRank(suggestions, Q({"aaa"})), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(suggestions, Q({"bbb"})), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank(suggestions, Q({"zzz"})), 0.0);
}

TEST(MetricsTest, MultiWordMatchIsExact) {
  std::vector<Suggestion> suggestions = {S({"aaa", "bbb"})};
  EXPECT_EQ(RankOfTruth(suggestions, Q({"aaa", "bbb"})), 1u);
  EXPECT_EQ(RankOfTruth(suggestions, Q({"bbb", "aaa"})), 0u);  // order matters
  EXPECT_EQ(RankOfTruth(suggestions, Q({"aaa"})), 0u);
}

TEST(MetricsAccumulatorTest, MrrDefinition) {
  MetricsAccumulator acc;
  acc.Add(1);  // rr 1
  acc.Add(2);  // rr 0.5
  acc.Add(0);  // rr 0
  acc.Add(4);  // rr 0.25
  EXPECT_NEAR(acc.Mrr(), (1.0 + 0.5 + 0.0 + 0.25) / 4.0, 1e-12);
  EXPECT_EQ(acc.query_count(), 4u);
}

TEST(MetricsAccumulatorTest, PrecisionAtN) {
  MetricsAccumulator acc;
  acc.Add(1);
  acc.Add(3);
  acc.Add(0);
  acc.Add(11);
  EXPECT_DOUBLE_EQ(acc.PrecisionAt(1), 0.25);
  EXPECT_DOUBLE_EQ(acc.PrecisionAt(3), 0.5);
  EXPECT_DOUBLE_EQ(acc.PrecisionAt(10), 0.5);
  EXPECT_DOUBLE_EQ(acc.PrecisionAt(11), 0.75);
}

TEST(MetricsAccumulatorTest, EmptyIsZero) {
  MetricsAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
  EXPECT_DOUBLE_EQ(acc.PrecisionAt(5), 0.0);
}

TEST(MetricsAccumulatorTest, PrecisionMonotonicInN) {
  MetricsAccumulator acc;
  for (size_t rank : {1u, 2u, 5u, 7u, 0u, 3u, 9u}) acc.Add(rank);
  for (size_t n = 1; n < 12; ++n) {
    EXPECT_LE(acc.PrecisionAt(n), acc.PrecisionAt(n + 1));
  }
}

}  // namespace
}  // namespace xclean
