#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/writer.h"

namespace xclean {
namespace {

TEST(ParserTest, MinimalDocument) {
  Result<XmlTree> t = ParseXmlString("<a/>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->size(), 1u);
  EXPECT_EQ(t->label(0), "a");
}

TEST(ParserTest, NestedElementsAndText) {
  Result<XmlTree> t = ParseXmlString(
      "<dblp><article><title>On trees</title><year>2011</year></article>"
      "</dblp>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->size(), 4u);
  EXPECT_EQ(t->label(1), "article");
  EXPECT_EQ(t->text(2), "On trees");
  EXPECT_EQ(t->text(3), "2011");
  EXPECT_EQ(t->DeweyString(3), "1.1.2");
}

TEST(ParserTest, AttributesBecomeNodes) {
  Result<XmlTree> t =
      ParseXmlString("<a key='k1' lang=\"en\"><b x='1'/></a>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // a, @key, @lang, b, @x
  ASSERT_EQ(t->size(), 5u);
  EXPECT_EQ(t->label(1), "@key");
  EXPECT_EQ(t->text(1), "k1");
  EXPECT_EQ(t->label(2), "@lang");
  EXPECT_EQ(t->label(4), "@x");
  EXPECT_EQ(t->depth(4), 3u);
}

TEST(ParserTest, AttributesCanBeDropped) {
  ParseOptions options;
  options.attributes_as_nodes = false;
  Result<XmlTree> t = ParseXmlString("<a key='k1'><b/></a>", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST(ParserTest, EntityDecoding) {
  Result<XmlTree> t = ParseXmlString(
      "<a>&lt;tag&gt; &amp; &quot;quoted&apos; &#65;&#x42;</a>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "<tag> & \"quoted' AB");
}

TEST(ParserTest, UnknownEntityPassesThrough) {
  Result<XmlTree> t = ParseXmlString("<a>x &uuml; y</a>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "x &uuml; y");
}

TEST(ParserTest, MalformedReferencesAreCountedNotSilent) {
  // Three malformed character references (bad hex digits, code point zero,
  // beyond U+10FFFF) are dropped from the text; the valid `&#65;` decodes;
  // the unknown entity passes through; the bare `&` run is emitted
  // literally. Every repair shows up in ParseStats.
  ParseStats stats;
  Result<XmlTree> t = ParseXmlString(
      "<a>&#xZZ; &#0; &#1114112; &#65; &uuml; a&b c</a>", ParseOptions(),
      &stats);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->text(0), "   A &uuml; a&b c");
  EXPECT_EQ(stats.malformed_char_refs, 3u);
  EXPECT_EQ(stats.unknown_entities, 1u);
  EXPECT_EQ(stats.unterminated_refs, 1u);
}

TEST(ParserTest, CleanDocumentCountsNothing) {
  ParseStats stats;
  Result<XmlTree> t = ParseXmlString(
      "<a attr='&#65;&amp;'>&lt;clean&gt; &#x42;</a>", ParseOptions(),
      &stats);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(stats.malformed_char_refs, 0u);
  EXPECT_EQ(stats.unknown_entities, 0u);
  EXPECT_EQ(stats.unterminated_refs, 0u);
}

TEST(ParserTest, StatsAccumulateAcrossCollectionDocuments) {
  ParseStats stats;
  Result<XmlTree> t = ParseXmlCollection(
      {"<d>&#xZZ;x</d>", "<d>&#0;y</d>", "<d>&nbsp;z</d>"}, "root",
      ParseOptions(), &stats);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(stats.malformed_char_refs, 2u);
  EXPECT_EQ(stats.unknown_entities, 1u);
}

TEST(ParserTest, NumericEntityUtf8) {
  Result<XmlTree> t = ParseXmlString("<a>&#252;</a>");  // ü
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "\xC3\xBC");
}

TEST(ParserTest, CdataSection) {
  Result<XmlTree> t = ParseXmlString("<a><![CDATA[<raw> & text]]></a>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "<raw> & text");
}

TEST(ParserTest, CommentsAndPisSkipped) {
  Result<XmlTree> t = ParseXmlString(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- in -->text<?pi data?></a>"
      "<!-- after -->");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->text(0), "text");
}

TEST(ParserTest, DoctypeWithInternalSubsetSkipped) {
  Result<XmlTree> t = ParseXmlString(
      "<!DOCTYPE dblp [ <!ELEMENT dblp (article*)> ]><dblp/>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->label(0), "dblp");
}

TEST(ParserTest, WhitespaceTextSkippedByDefault) {
  Result<XmlTree> t = ParseXmlString("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->has_text(0));
  EXPECT_EQ(t->text(1), "x");
}

TEST(ParserTest, WhitespaceTextKeptWhenAsked) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  Result<XmlTree> t = ParseXmlString("<a> <b>x</b></a>", options);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->has_text(0));
}

TEST(ParserTest, MixedContent) {
  Result<XmlTree> t = ParseXmlString("<a>pre<b>mid</b>post</a>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "pre post");
  EXPECT_EQ(t->text(1), "mid");
}

TEST(ParserErrorTest, MismatchedTag) {
  Result<XmlTree> t = ParseXmlString("<a><b></a></b>");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserErrorTest, UnterminatedConstructs) {
  EXPECT_FALSE(ParseXmlString("<a>").ok());
  EXPECT_FALSE(ParseXmlString("<a><!-- comment </a>").ok());
  EXPECT_FALSE(ParseXmlString("<a><![CDATA[ x </a>").ok());
  EXPECT_FALSE(ParseXmlString("<a attr='x></a>").ok());
  EXPECT_FALSE(ParseXmlString("<!DOCTYPE x [ <a/>").ok());
}

TEST(ParserErrorTest, BadSyntax) {
  EXPECT_FALSE(ParseXmlString("").ok());
  EXPECT_FALSE(ParseXmlString("plain text").ok());
  EXPECT_FALSE(ParseXmlString("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseXmlString("<a 1bad='x'/>").ok());
  EXPECT_FALSE(ParseXmlString("<a attr=unquoted/>").ok());
}

TEST(ParserErrorTest, ReportsLineNumber) {
  Result<XmlTree> t = ParseXmlString("<a>\n\n<b></c>\n</a>");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status().ToString();
}

TEST(ParserTest, CollectionUnderVirtualRoot) {
  std::vector<std::string> docs = {"<article><t>one</t></article>",
                                   "<article><t>two</t></article>"};
  Result<XmlTree> t = ParseXmlCollection(docs, "collection");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->label(0), "collection");
  EXPECT_EQ(t->size(), 5u);
  EXPECT_EQ(t->depth(1), 2u);
  EXPECT_EQ(t->DeweyString(3), "1.2");
}

TEST(ParserTest, CollectionReportsFailingDocument) {
  std::vector<std::string> docs = {"<ok/>", "<broken>"};
  Result<XmlTree> t = ParseXmlCollection(docs, "root");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("document 1"), std::string::npos);
}

TEST(ParserTest, FileNotFound) {
  Result<XmlTree> t = ParseXmlFile("/nonexistent/path.xml");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(ParserTest, RoundTripThroughWriter) {
  const char* xml =
      "<dblp><article key=\"a1\"><author>Jane Doe</author>"
      "<title>Trees &amp; tries</title></article></dblp>";
  Result<XmlTree> t1 = ParseXmlString(xml);
  ASSERT_TRUE(t1.ok());
  std::string serialized = WriteXml(t1.value());
  Result<XmlTree> t2 = ParseXmlString(serialized);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString() << "\n" << serialized;
  ASSERT_EQ(t1->size(), t2->size());
  for (NodeId n = 0; n < t1->size(); ++n) {
    EXPECT_EQ(t1->label(n), t2->label(n));
    EXPECT_EQ(t1->text(n), t2->text(n));
    EXPECT_EQ(t1->depth(n), t2->depth(n));
  }
}

}  // namespace
}  // namespace xclean
