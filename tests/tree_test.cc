#include "xml/tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace xclean {
namespace {

/// The running example shape of the paper's Figure 2: a root with c- and
/// d-typed children holding x leaves.
XmlTree BuildSample() {
  XmlTreeBuilder b;
  EXPECT_TRUE(b.BeginElement("a").ok());
  EXPECT_TRUE(b.BeginElement("c").ok());
  EXPECT_TRUE(b.AddLeaf("x", "tree").ok());
  EXPECT_TRUE(b.AddLeaf("x", "trie icde").ok());
  EXPECT_TRUE(b.EndElement().ok());
  EXPECT_TRUE(b.BeginElement("d").ok());
  EXPECT_TRUE(b.AddLeaf("x", "trie").ok());
  EXPECT_TRUE(b.AddLeaf("x", "icde icdt").ok());
  EXPECT_TRUE(b.EndElement().ok());
  EXPECT_TRUE(b.EndElement().ok());
  Result<XmlTree> t = std::move(b).Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(TreeTest, PreorderIdsAndDepths) {
  XmlTree t = BuildSample();
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.depth(0), 1u);
  EXPECT_EQ(t.label(0), "a");
  EXPECT_EQ(t.label(1), "c");
  EXPECT_EQ(t.depth(1), 2u);
  EXPECT_EQ(t.label(2), "x");
  EXPECT_EQ(t.depth(2), 3u);
  EXPECT_EQ(t.label(4), "d");
}

TEST(TreeTest, DeweyCodes) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.DeweyString(0), "1");
  EXPECT_EQ(t.DeweyString(1), "1.1");
  EXPECT_EQ(t.DeweyString(2), "1.1.1");
  EXPECT_EQ(t.DeweyString(3), "1.1.2");
  EXPECT_EQ(t.DeweyString(4), "1.2");
  EXPECT_EQ(t.DeweyString(6), "1.2.2");
}

TEST(TreeTest, SubtreeRangesMatchAncestry) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.subtree_end(0), 6u);
  EXPECT_EQ(t.subtree_end(1), 3u);
  EXPECT_EQ(t.subtree_end(4), 6u);
  EXPECT_EQ(t.subtree_end(2), 2u);
  EXPECT_TRUE(t.IsAncestor(0, 5));
  EXPECT_TRUE(t.IsAncestor(1, 3));
  EXPECT_FALSE(t.IsAncestor(1, 4));
  EXPECT_FALSE(t.IsAncestor(2, 2));
  EXPECT_TRUE(t.IsAncestorOrSelf(2, 2));
}

TEST(TreeTest, DocumentOrderMatchesDeweyOrder) {
  XmlTree t = BuildSample();
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = 0; b < t.size(); ++b) {
      int dewey_cmp = CompareDewey(t.dewey(a), t.dewey(b));
      int id_cmp = a < b ? -1 : (a == b ? 0 : 1);
      EXPECT_EQ(dewey_cmp < 0, id_cmp < 0) << a << " vs " << b;
      EXPECT_EQ(dewey_cmp == 0, id_cmp == 0);
    }
  }
}

TEST(TreeTest, AncestryMatchesDeweyPrefix) {
  XmlTree t = BuildSample();
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = 0; b < t.size(); ++b) {
      EXPECT_EQ(t.IsAncestor(a, b), IsDeweyAncestor(t.dewey(a), t.dewey(b)))
          << a << " vs " << b;
    }
  }
}

TEST(TreeTest, AncestorAtDepth) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.AncestorAtDepth(3, 1), 0u);
  EXPECT_EQ(t.AncestorAtDepth(3, 2), 1u);
  EXPECT_EQ(t.AncestorAtDepth(3, 3), 3u);
  EXPECT_EQ(t.AncestorAtDepth(6, 2), 4u);
}

TEST(TreeTest, Lca) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.Lca(2, 3), 1u);
  EXPECT_EQ(t.Lca(2, 5), 0u);
  EXPECT_EQ(t.Lca(5, 6), 4u);
  EXPECT_EQ(t.Lca(2, 2), 2u);
  EXPECT_EQ(t.Lca(1, 3), 1u);  // ancestor-descendant pair
}

TEST(TreeTest, TextAttachment) {
  XmlTree t = BuildSample();
  EXPECT_FALSE(t.has_text(0));
  EXPECT_TRUE(t.has_text(2));
  EXPECT_EQ(t.text(2), "tree");
  EXPECT_EQ(t.text(3), "trie icde");
  EXPECT_EQ(t.text(0), "");
}

TEST(TreeTest, MixedTextRunsMerge) {
  XmlTreeBuilder b;
  ASSERT_TRUE(b.BeginElement("r").ok());
  ASSERT_TRUE(b.AddText("hello").ok());
  ASSERT_TRUE(b.AddLeaf("x", "inner").ok());
  ASSERT_TRUE(b.AddText("world").ok());
  ASSERT_TRUE(b.EndElement().ok());
  Result<XmlTree> t = std::move(b).Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text(0), "hello world");
}

TEST(TreeTest, ChildIteration) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.FirstChild(0), 1u);
  EXPECT_EQ(t.NextSibling(1), 4u);
  EXPECT_EQ(t.NextSibling(4), kInvalidNode);
  EXPECT_EQ(t.FirstChild(2), kInvalidNode);
  EXPECT_EQ(t.FirstChild(1), 2u);
  EXPECT_EQ(t.NextSibling(2), 3u);
  EXPECT_EQ(t.NextSibling(3), kInvalidNode);
}

TEST(TreeTest, FindByDewey) {
  XmlTree t = BuildSample();
  for (NodeId n = 0; n < t.size(); ++n) {
    std::vector<uint32_t> code(t.dewey(n).begin(), t.dewey(n).end());
    EXPECT_EQ(t.FindByDewey(code), n);
  }
  EXPECT_EQ(t.FindByDewey(DeweyFromString("1.9")), kInvalidNode);
  EXPECT_EQ(t.FindByDewey(DeweyFromString("2")), kInvalidNode);
}

TEST(TreeTest, PathTable) {
  XmlTree t = BuildSample();
  // Paths: /a, /a/c, /a/c/x, /a/d, /a/d/x.
  EXPECT_EQ(t.path_count(), 5u);
  PathId acx = t.FindPath("/a/c/x");
  ASSERT_NE(acx, XmlTree::kInvalidPath);
  EXPECT_EQ(t.path_depth(acx), 3u);
  EXPECT_EQ(t.path_node_count(acx), 2u);
  PathId adx = t.FindPath("/a/d/x");
  ASSERT_NE(adx, XmlTree::kInvalidPath);
  EXPECT_NE(acx, adx);  // same labels, different types
  EXPECT_EQ(t.path_id(2), acx);
  EXPECT_EQ(t.path_id(5), adx);
  EXPECT_EQ(t.FindPath("/a/x"), XmlTree::kInvalidPath);
}

TEST(TreeTest, DepthStats) {
  XmlTree t = BuildSample();
  EXPECT_EQ(t.max_depth(), 3u);
  EXPECT_NEAR(t.avg_depth(), (1 + 2 + 3 + 3 + 2 + 3 + 3) / 7.0, 1e-9);
}

TEST(TreeBuilderTest, RejectsMultipleRoots) {
  XmlTreeBuilder b;
  ASSERT_TRUE(b.BeginElement("a").ok());
  ASSERT_TRUE(b.EndElement().ok());
  EXPECT_FALSE(b.BeginElement("b").ok());
}

TEST(TreeBuilderTest, RejectsUnbalanced) {
  XmlTreeBuilder b;
  ASSERT_TRUE(b.BeginElement("a").ok());
  Result<XmlTree> t = std::move(b).Finish();
  EXPECT_FALSE(t.ok());
}

TEST(TreeBuilderTest, RejectsEmpty) {
  XmlTreeBuilder b;
  Result<XmlTree> t = std::move(b).Finish();
  EXPECT_FALSE(t.ok());
  EXPECT_FALSE(XmlTreeBuilder().EndElement().ok());
}

TEST(TreeBuilderTest, RejectsTextOutsideElement) {
  XmlTreeBuilder b;
  EXPECT_FALSE(b.AddText("stray").ok());
}

/// Property: on random trees, subtree_end-based ancestry agrees with
/// Dewey-prefix ancestry, and sibling ordinals are dense from 1.
TEST(TreePropertyTest, RandomTreesConsistent) {
  Rng rng(31337);
  for (int round = 0; round < 20; ++round) {
    XmlTreeBuilder b;
    ASSERT_TRUE(b.BeginElement("root").ok());
    size_t opens = 1;
    size_t total = 1;
    // Random walk of opens/closes.
    while (total < 60) {
      if (opens > 1 && rng.Bernoulli(0.4)) {
        ASSERT_TRUE(b.EndElement().ok());
        --opens;
      } else {
        ASSERT_TRUE(
            b.BeginElement(std::string(1, 'a' + rng.Uniform(4))).ok());
        ++opens;
        ++total;
      }
    }
    while (opens > 0) {
      ASSERT_TRUE(b.EndElement().ok());
      --opens;
    }
    Result<XmlTree> result = std::move(b).Finish();
    ASSERT_TRUE(result.ok());
    const XmlTree& t = result.value();
    for (NodeId x = 0; x < t.size(); ++x) {
      ASSERT_EQ(t.dewey(x).size(), t.depth(x));
      for (NodeId y = 0; y < t.size(); ++y) {
        ASSERT_EQ(t.IsAncestor(x, y), IsDeweyAncestor(t.dewey(x), t.dewey(y)));
      }
      // Parent-child consistency.
      if (x != t.root()) {
        NodeId p = t.parent(x);
        ASSERT_TRUE(t.IsAncestor(p, x));
        ASSERT_EQ(t.depth(p) + 1, t.depth(x));
      }
    }
  }
}

}  // namespace
}  // namespace xclean
