#include "core/suggester.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xclean {
namespace {

constexpr char kXml[] =
    "<bib>"
    "<paper><title>power point presentations</title></paper>"
    "<paper><title>powerpoint slides design</title></paper>"
    "<paper><title>database systems inside</title></paper>"
    "<paper><title>keyword search trees</title></paper>"
    "</bib>";

TEST(SuggesterTest, FromXmlStringEndToEnd) {
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString(kXml);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  std::vector<Suggestion> out = s->Suggest("keyward search");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].words, (std::vector<std::string>{"keyword", "search"}));
  EXPECT_GT(out[0].entity_count, 0u);
}

TEST(SuggesterTest, ParseErrorPropagates) {
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString("<broken>");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kParseError);
}

TEST(SuggesterTest, FileNotFoundPropagates) {
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlFile("/no/such.xml");
  ASSERT_FALSE(s.ok());
}

TEST(SuggesterTest, QueryStringNormalization) {
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString(kXml);
  ASSERT_TRUE(s.ok());
  // Punctuation and stopwords in the raw string are cleaned before
  // suggestion.
  std::vector<Suggestion> out = s->Suggest("the Keyword-  search!!");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].words, (std::vector<std::string>{"keyword", "search"}));
}

TEST(SuggesterTest, SpaceEditMergeFindsConcatenatedForm) {
  SuggesterOptions options;
  options.space_tau = 1;
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString(kXml, options);
  ASSERT_TRUE(s.ok());
  std::vector<Suggestion> out = s->Suggest("powerpoint slides");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].words,
            (std::vector<std::string>{"powerpoint", "slides"}));

  // "power point" as two keywords has no entity containing both (only
  // paper 1) — it does, actually. But the merged "powerpoint slides"
  // route must also surface thanks to the space edit.
  bool found_merged = false;
  for (const Suggestion& sg : s->Suggest("power point slides")) {
    if (sg.words == std::vector<std::string>{"powerpoint", "slides"}) {
      found_merged = true;
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(SuggesterTest, SpaceEditPenaltyDiscountsResegmentation) {
  SuggesterOptions options;
  options.space_tau = 1;
  options.space_penalty_beta = 5.0;
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString(kXml, options);
  ASSERT_TRUE(s.ok());
  // "power point" is answerable as-is (paper 1); its unsplit suggestion
  // must outrank the merged variant that costs a space change.
  std::vector<Suggestion> out = s->Suggest("power point");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].words, (std::vector<std::string>{"power", "point"}));
}

TEST(SuggesterTest, FromTreeWorks) {
  Result<XmlTree> tree = ParseXmlString(kXml);
  ASSERT_TRUE(tree.ok());
  XCleanSuggester s = XCleanSuggester::FromTree(std::move(tree).value());
  EXPECT_FALSE(s.Suggest("databse systems").empty());
}

TEST(SuggesterTest, MoveSemanticsKeepInternalPointersValid) {
  Result<XCleanSuggester> s = XCleanSuggester::FromXmlString(kXml);
  ASSERT_TRUE(s.ok());
  XCleanSuggester moved = std::move(s).value();
  std::vector<Suggestion> out = moved.Suggest("keyward search");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].words, (std::vector<std::string>{"keyword", "search"}));
}

}  // namespace
}  // namespace xclean
