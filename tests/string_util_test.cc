#include "common/string_util.h"

#include <gtest/gtest.h>

namespace xclean {
namespace {

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("HeLLo W0rld!"), "hello w0rld!");
  EXPECT_EQ(AsciiLower(""), "");
  EXPECT_EQ(AsciiLower("abc"), "abc");
}

TEST(StringUtilTest, CharClasses) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_FALSE(IsAsciiDigit('a'));
  EXPECT_TRUE(IsAsciiAlnum('7'));
  EXPECT_TRUE(IsAsciiSpace('\t'));
  EXPECT_FALSE(IsAsciiSpace('x'));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  bb\tccc\n"),
            (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_EQ(SplitWhitespace("one"), (std::vector<std::string>{"one"}));
}

TEST(StringUtilTest, SplitCharKeepsEmptyPieces) {
  EXPECT_EQ(SplitChar("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitChar("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitChar(".", '.'), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

}  // namespace
}  // namespace xclean
