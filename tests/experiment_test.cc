#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/xclean.h"
#include "data/dblp_gen.h"

namespace xclean {
namespace {

TEST(ExperimentTest, RunExperimentComputesMetricsAndTiming) {
  DblpGenOptions gen;
  gen.num_publications = 400;
  gen.seed = 2;
  auto index = XmlIndex::Build(GenerateDblp(gen));

  WorkloadOptions wo;
  wo.num_queries = 20;
  wo.seed = 5;
  std::vector<Query> initial = SampleInitialQueries(*index, wo);
  QuerySet set =
      MakeQuerySet("DBLP-RAND", *index, initial, Perturbation::kRand, wo);

  XCleanOptions options;
  options.gamma = 1000;
  XClean cleaner(*index, options);
  ExperimentResult result = RunExperiment(cleaner, set);

  EXPECT_EQ(result.cleaner_name, "XClean");
  EXPECT_EQ(result.query_set_name, "DBLP-RAND");
  EXPECT_EQ(result.query_count, 20u);
  ASSERT_EQ(result.precision_at.size(), 10u);
  // MRR bounded by precision@10 (a found truth contributes at most 1).
  EXPECT_LE(result.mrr, result.precision_at[9] + 1e-12);
  EXPECT_GE(result.mrr, 0.0);
  for (size_t n = 1; n < 10; ++n) {
    EXPECT_LE(result.precision_at[n - 1], result.precision_at[n] + 1e-12);
  }
  EXPECT_GT(result.avg_seconds, 0.0);
  // The whole point: XClean recovers a solid majority of RAND errors.
  EXPECT_GT(result.mrr, 0.5);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.761234), "0.76");
  EXPECT_EQ(TablePrinter::Num(12.237), "12.24");
  EXPECT_EQ(TablePrinter::Num(123.4), "123.4");
}

}  // namespace
}  // namespace xclean
