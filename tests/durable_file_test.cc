// common/durable_file.h: atomic replace, durable append, checksum-verified
// reads, and the no-temp-litter guarantee every publisher builds on.

#include "common/durable_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/fault_injection.h"

namespace xclean {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Temp files are `<path>.tmp.<nonce>` siblings; count how many linger.
size_t TempLitterCount(const std::string& path) {
  const std::string prefix = fs::path(path).filename().string() + ".tmp.";
  size_t count = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(path).parent_path())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

TEST(DurableFileTest, AtomicWriteCreatesAndReplaces) {
  const std::string path = TempPath("durable_basic.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "first");

  // Replace: readers of `path` can only ever observe old or new bytes.
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer payload").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "second, longer payload");
  EXPECT_EQ(TempLitterCount(path), 0u);
  fs::remove(path);
}

TEST(DurableFileTest, AtomicWriteWithoutSyncStillAtomic) {
  const std::string path = TempPath("durable_nosync.bin");
  DurableWriteOptions options;
  options.sync = false;
  ASSERT_TRUE(AtomicWriteFile(path, "payload", options).ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "payload");
  EXPECT_EQ(TempLitterCount(path), 0u);
  fs::remove(path);
}

TEST(DurableFileTest, AppendDurableAppendsWholeRecords) {
  const std::string path = TempPath("durable_append.log");
  fs::remove(path);
  ASSERT_TRUE(AppendDurable(path, "one\n").ok());
  ASSERT_TRUE(AppendDurable(path, "two\n").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one\ntwo\n");
  fs::remove(path);
}

TEST(DurableFileTest, HashMatchesInMemoryFnv) {
  const std::string path = TempPath("durable_hash.bin");
  const std::string payload = "the quick brown fox";
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  Result<uint64_t> h = HashFileContents(path);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value(), Fnv1a(payload.data(), payload.size()));
  fs::remove(path);
}

TEST(DurableFileTest, VerifyChecksumCatchesSizeAndContentLies) {
  const std::string path = TempPath("durable_verify.bin");
  const std::string payload = "snapshot payload bytes";
  const uint64_t checksum = Fnv1a(payload.data(), payload.size());
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());

  EXPECT_TRUE(VerifyFileChecksum(path, payload.size(), checksum).ok());
  // Wrong length reported before any hashing.
  Status wrong_size = VerifyFileChecksum(path, payload.size() + 1, checksum);
  ASSERT_FALSE(wrong_size.ok());
  EXPECT_EQ(wrong_size.code(), StatusCode::kParseError);
  // Right length, wrong bytes.
  Status wrong_sum = VerifyFileChecksum(path, payload.size(), checksum ^ 1);
  ASSERT_FALSE(wrong_sum.ok());
  EXPECT_EQ(wrong_sum.code(), StatusCode::kParseError);
  // Missing file is NotFound, not ParseError.
  EXPECT_EQ(VerifyFileChecksum(path + ".gone", 1, 1).code(),
            StatusCode::kNotFound);
  fs::remove(path);
}

TEST(DurableFileTest, FailedWriteLeavesTargetAndDirectoryClean) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with XCLEAN_FAULT_INJECTION=OFF";
  }
  fault::DisarmAll();
  const std::string path = TempPath("durable_failed.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "survives").ok());

  // An injected failure at any stage before the rename must leave the
  // existing file untouched and no temp litter behind.
  for (const char* point :
       {"durable.open_tmp", "durable.write", "durable.sync",
        "durable.rename"}) {
    fault::ArmStatus(point, Status::Internal("injected disk full"), 1);
    Status s = AtomicWriteFile(path, "never visible");
    ASSERT_FALSE(s.ok()) << point;
    Result<std::string> read = ReadFileToString(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "survives") << point;
    EXPECT_EQ(TempLitterCount(path), 0u) << point;
  }
  fault::DisarmAll();
  fs::remove(path);
}

TEST(DurableFileTest, SyncDirectoryIsBestEffort) {
  EXPECT_TRUE(SyncDirectory(testing::TempDir()).ok());
  // A bogus directory degrades to a no-op, never an error.
  EXPECT_TRUE(SyncDirectory("/no/such/dir/anywhere").ok());
}

}  // namespace
}  // namespace xclean
