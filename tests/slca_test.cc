#include "core/slca.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "xml/parser.h"

namespace xclean {
namespace {

XmlTree Parse(const char* xml) {
  Result<XmlTree> t = ParseXmlString(xml);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(SlcaTest, SingleListIsItsOwnSlcaSet) {
  XmlTree t = Parse("<a><b><c/><d/></b><e/></a>");
  // Witnesses at c (2) and e (4): minimal nodes containing a witness are
  // the witnesses themselves.
  auto slcas = ComputeSlcas(t, {{2, 4}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{2, 4}));
}

TEST(SlcaTest, ClassicTwoListCase) {
  //        a(0)
  //    b(1)      e(4)
  //  c(2) d(3)  f(5) g(6)
  XmlTree t = Parse("<a><b><c/><d/></b><e><f/><g/></e></a>");
  // k1 at {c, f}, k2 at {d, g}: SLCAs are b and e.
  auto slcas = ComputeSlcas(t, {{2, 5}, {3, 6}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{1, 4}));
}

TEST(SlcaTest, AncestorRemoval) {
  XmlTree t = Parse("<a><b><c/><d/></b></a>");
  // k1 at {b, c}, k2 at {c}: both a-level and b-level qualify but c's
  // subtree (just c) contains k1 witness c and k2 witness c -> SLCA = {c}.
  auto slcas = ComputeSlcas(t, {{1, 2}, {2}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{2}));
}

TEST(SlcaTest, RootOnlyConnection) {
  XmlTree t = Parse("<a><b><c/></b><d><e/></d></a>");
  // k1 under b, k2 under d: only the root contains both.
  auto slcas = ComputeSlcas(t, {{2}, {4}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{0}));
}

TEST(SlcaTest, EmptyInputs) {
  XmlTree t = Parse("<a><b/></a>");
  EXPECT_TRUE(ComputeSlcas(t, {}).empty());
  EXPECT_TRUE(ComputeSlcas(t, {{1}, {}}).empty());
}

TEST(SlcaTest, WitnessEqualsAncestorOfOtherWitness) {
  XmlTree t = Parse("<a><b><c/></b></a>");
  // k1 at {b}, k2 at {c}: subtree(b) holds both -> SLCA = {b}; subtree(c)
  // lacks k1.
  auto slcas = ComputeSlcas(t, {{1}, {2}});
  EXPECT_EQ(slcas, (std::vector<NodeId>{1}));
}

/// Property: fast algorithm == brute-force oracle on random trees and
/// random witness sets, across list counts.
class SlcaPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SlcaPropertyTest, MatchesBruteForce) {
  const size_t num_lists = GetParam();
  Rng rng(9000 + num_lists);
  for (int round = 0; round < 60; ++round) {
    // Random tree.
    XmlTreeBuilder b;
    ASSERT_TRUE(b.BeginElement("r").ok());
    size_t opens = 1, total = 1;
    size_t target = 10 + rng.Uniform(80);
    while (total < target) {
      if (opens > 1 && rng.Bernoulli(0.45)) {
        ASSERT_TRUE(b.EndElement().ok());
        --opens;
      } else {
        ASSERT_TRUE(b.BeginElement("n").ok());
        ++opens;
        ++total;
      }
    }
    while (opens > 0) {
      ASSERT_TRUE(b.EndElement().ok());
      --opens;
    }
    Result<XmlTree> tr = std::move(b).Finish();
    ASSERT_TRUE(tr.ok());
    const XmlTree& t = tr.value();

    std::vector<std::vector<NodeId>> lists(num_lists);
    for (auto& list : lists) {
      size_t n = 1 + rng.Uniform(8);
      for (size_t i = 0; i < n; ++i) {
        list.push_back(static_cast<NodeId>(rng.Uniform(t.size())));
      }
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    EXPECT_EQ(ComputeSlcas(t, lists), ComputeSlcasBruteForce(t, lists))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(ListCounts, SlcaPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace xclean
