#include "xml/writer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xclean {
namespace {

TEST(WriterTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXmlText("a<b>&\"'"),
            "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(EscapeXmlText("plain"), "plain");
  EXPECT_EQ(EscapeXmlText(""), "");
}

TEST(WriterTest, SelfClosingEmpty) {
  Result<XmlTree> t = ParseXmlString("<a><b/></a>");
  ASSERT_TRUE(t.ok());
  WriteOptions options;
  options.indent = false;
  EXPECT_EQ(WriteXml(t.value(), options), "<a><b/></a>");
}

TEST(WriterTest, TextOnOneLine) {
  Result<XmlTree> t = ParseXmlString("<a><b>x y</b></a>");
  ASSERT_TRUE(t.ok());
  std::string out = WriteXml(t.value());
  EXPECT_NE(out.find("<b>x y</b>"), std::string::npos);
}

TEST(WriterTest, AttributeNodesAsAttributes) {
  Result<XmlTree> t = ParseXmlString("<a key=\"k1\"><b>x</b></a>");
  ASSERT_TRUE(t.ok());
  WriteOptions options;
  options.indent = false;
  EXPECT_EQ(WriteXml(t.value(), options), "<a key=\"k1\"><b>x</b></a>");
}

TEST(WriterTest, AttributeNodesAsElementsWhenDisabled) {
  Result<XmlTree> t = ParseXmlString("<a key=\"k1\"/>");
  ASSERT_TRUE(t.ok());
  WriteOptions options;
  options.indent = false;
  options.attribute_nodes_as_attributes = false;
  EXPECT_EQ(WriteXml(t.value(), options), "<a><_key>k1</_key></a>");
}

TEST(WriterTest, SubtreeSerialization) {
  Result<XmlTree> t = ParseXmlString("<a><b>one</b><c>two</c></a>");
  ASSERT_TRUE(t.ok());
  WriteOptions options;
  options.indent = false;
  EXPECT_EQ(WriteXml(t.value(), 2, options), "<c>two</c>");
}

TEST(WriterTest, RoundTripWithEscapes) {
  const char* xml = "<a note=\"5 &lt; 6\"><t>AT&amp;T rocks</t></a>";
  Result<XmlTree> t1 = ParseXmlString(xml);
  ASSERT_TRUE(t1.ok());
  Result<XmlTree> t2 = ParseXmlString(WriteXml(t1.value()));
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->size(), t2->size());
  EXPECT_EQ(t2->text(2), "AT&T rocks");
  EXPECT_EQ(t2->text(1), "5 < 6");
}

}  // namespace
}  // namespace xclean
