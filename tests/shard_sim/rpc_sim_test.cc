/// The RPC extension of the shard simulation harness: the FULL serving
/// stack — Coordinator fanning out to per-shard ReplicaSets whose replicas
/// are RpcShardBackend clients speaking the checksummed wire protocol to
/// real RpcShardServer sockets over loopback — exercised under seeded
/// byte-level fault schedules injected by the FaultProxy. Replica 0 of
/// every shard takes the scripted damage (truncate, bitflip, disconnect,
/// stall, duplicate, garbage, both directions); replica 1 stays clean.
///
/// The acceptance bar: every schedule's merged ranking equals the
/// unsharded oracle exactly — the mangled bytes cost retries and
/// failovers, never correctness, never truncation, and never a hang. This
/// is the "any one replica down still matches the oracle over real
/// sockets" claim of the transport PR, plus two systematic scenarios: a
/// replica killed mid-workload (process-restart failover) and hedged
/// requests racing a stalled wire (loser cancelled via cancel frame).
///
/// A failing schedule prints its FaultScript and the seed; replay with
///   XCLEAN_SHARD_SEED=<seed> ctest -R rpc_sim_test

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/xclean.h"
#include "index/xml_index.h"
#include "rpc/fault_proxy.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_shard_server.h"
#include "shard/coordinator.h"
#include "shard/replica_set.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"

namespace xclean::shardtest {
namespace {

using rpc::FaultProxy;
using rpc::FaultScript;
using rpc::MangleKind;
using rpc::RpcClientOptions;
using rpc::RpcServerOptions;
using rpc::RpcShardBackend;
using rpc::RpcShardServer;
using shard::BuildShardedCorpus;
using shard::Coordinator;
using shard::CoordinatorOptions;
using shard::CoordinatorResult;
using shard::ReplicaSet;
using shard::ReplicaSetOptions;
using shard::ShardedCorpus;
using shard::ShardedCorpusOptions;
using shard::ShardServer;

constexpr uint64_t kGeneration = 31;

size_t SimScheduleCount() {
  const char* env = std::getenv("XCLEAN_RPC_SIM_SCHEDULES");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 48;
}

XCleanOptions SimOptions(Semantics semantics) {
  XCleanOptions options;
  options.gamma = 0;  // the exactness contract is the unbounded config's
  options.semantics = semantics;
  options.top_k = 50;
  return options;
}

/// One corpus, its oracles, and the sharded builds the schedules draw.
struct CorpusFixture {
  std::unique_ptr<XmlIndex> oracle_index;
  std::map<Semantics, std::unique_ptr<XClean>> oracles;
  std::vector<Query> queries;
  std::map<std::pair<size_t, Semantics>, ShardedCorpus> sharded;
};

class RpcSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new CorpusFixture();
    const uint64_t seed = ShardBaseSeed() + 9100;
    fixture_->oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
    fixture_->queries = DirtyQueries(*fixture_->oracle_index, seed);
    static constexpr Semantics kAll[] = {
        Semantics::kNodeType, Semantics::kSlca, Semantics::kElca};
    for (Semantics semantics : kAll) {
      fixture_->oracles[semantics] =
          std::make_unique<XClean>(*fixture_->oracle_index,
                                   SimOptions(semantics));
      for (size_t num_shards : {2u, 3u}) {
        ShardedCorpusOptions sopts;
        sopts.num_shards = num_shards;
        sopts.xclean = SimOptions(semantics);
        Result<ShardedCorpus> corpus = BuildShardedCorpus(
            RandomCorpusTree(seed), sopts, kGeneration);
        ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
        fixture_->sharded.emplace(std::make_pair(num_shards, semantics),
                                  std::move(corpus.value()));
      }
    }
  }

  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  static CorpusFixture* fixture_;
};

CorpusFixture* RpcSimTest::fixture_ = nullptr;

RpcServerOptions SimServerOptions(uint32_t shard_id) {
  RpcServerOptions options;
  options.shard_id = shard_id;
  options.max_connections = 4;
  options.eval_threads = 2;
  options.idle_timeout = std::chrono::milliseconds(5000);
  options.write_timeout = std::chrono::milliseconds(2000);
  return options;
}

RpcClientOptions SimClientOptions(uint64_t seed) {
  RpcClientOptions options;
  options.connect_timeout = std::chrono::milliseconds(300);
  options.default_read_timeout = std::chrono::milliseconds(1000);
  options.max_dial_attempts = 2;
  options.dial_backoff.initial = std::chrono::milliseconds(2);
  options.dial_backoff.cap = std::chrono::milliseconds(10);
  options.seed = seed;
  return options;
}

/// Sequential ReplicaSet tuning for the sweep: each non-final attempt is
/// sliced at the hedge delay, so a stalled wire costs one slice and the
/// leg fails over to the clean sibling well inside the fan-out budget.
ReplicaSetOptions SimReplicaOptions(uint64_t seed) {
  ReplicaSetOptions options;
  options.max_retries = 2;
  options.max_failovers = 2;
  options.backoff.initial = std::chrono::milliseconds(2);
  options.backoff.cap = std::chrono::milliseconds(10);
  options.hedge_delay_floor = std::chrono::milliseconds(250);
  options.hedge_delay_cap = std::chrono::milliseconds(250);
  options.seed = seed;
  return options;
}

CoordinatorOptions SimCoordinatorOptions() {
  CoordinatorOptions copts;
  copts.top_k = 50;
  copts.fanout_timeout = std::chrono::milliseconds(4000);
  return copts;
}

/// Everything one shard needs on the wire: two ShardServer replicas over
/// the shared engine, their socket front ends, the fault proxy shielding
/// (mangling) replica 0, and the two RPC clients the ReplicaSet routes
/// over. Teardown order matters and is encoded in the destructor order:
/// clients die first (sockets close), then proxies, then servers.
struct WiredShard {
  std::unique_ptr<ShardServer> replica0;
  std::unique_ptr<ShardServer> replica1;
  std::unique_ptr<RpcShardServer> rpc0;
  std::unique_ptr<RpcShardServer> rpc1;
  std::unique_ptr<FaultProxy> proxy;
  std::unique_ptr<RpcShardBackend> client0;  // through the proxy
  std::unique_ptr<RpcShardBackend> client1;  // direct
  std::unique_ptr<ReplicaSet> set;
};

/// Builds the wired fleet for one schedule. `script` applies to replica 0
/// of every shard (the worst correlated single-replica byte fault).
std::vector<std::unique_ptr<WiredShard>> WireFleet(
    const ShardedCorpus& corpus, const FaultScript& script, uint64_t seed) {
  std::vector<std::unique_ptr<WiredShard>> fleet;
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    auto wired = std::make_unique<WiredShard>();
    wired->replica0 =
        std::make_unique<ShardServer>(s, corpus.engine, kGeneration);
    wired->replica1 =
        std::make_unique<ShardServer>(s, corpus.engine, kGeneration);
    wired->rpc0 = std::make_unique<RpcShardServer>(wired->replica0.get(),
                                                   SimServerOptions(s));
    wired->rpc1 = std::make_unique<RpcShardServer>(wired->replica1.get(),
                                                   SimServerOptions(s));
    EXPECT_TRUE(wired->rpc0->Start().ok());
    EXPECT_TRUE(wired->rpc1->Start().ok());
    wired->proxy = std::make_unique<FaultProxy>(wired->rpc0->port());
    EXPECT_TRUE(wired->proxy->Start().ok());
    wired->proxy->SetScript(script);
    wired->client0 = std::make_unique<RpcShardBackend>(
        wired->proxy->port(), s, SimClientOptions(seed + s));
    wired->client1 = std::make_unique<RpcShardBackend>(
        wired->rpc1->port(), s, SimClientOptions(seed + s + 1000));
    wired->set = std::make_unique<ReplicaSet>(
        s,
        std::vector<shard::ShardBackend*>{wired->client0.get(),
                                          wired->client1.get()},
        SimReplicaOptions(seed + s));
    fleet.push_back(std::move(wired));
  }
  return fleet;
}

void TearDownFleet(std::vector<std::unique_ptr<WiredShard>>& fleet) {
  for (auto& wired : fleet) {
    wired->set.reset();
    wired->client0.reset();
    wired->client1.reset();
    wired->proxy->Shutdown();
    wired->rpc0->Shutdown();
    wired->rpc1->Shutdown();
  }
}

/// The sweep: seeded byte-fault schedules against the full stack. Replica
/// 0 of every shard takes the same mangling script; the merged ranking
/// must still equal the unsharded oracle — untruncated, every shard
/// healthy, inside the fan-out budget.
TEST_F(RpcSimTest, MangledWireSweepStillMatchesOracle) {
  const uint64_t base = ShardBaseSeed();
  const size_t schedules = SimScheduleCount();
  static constexpr Semantics kAll[] = {
      Semantics::kNodeType, Semantics::kSlca, Semantics::kElca};

  for (size_t k = 0; k < schedules; ++k) {
    const uint64_t seed = base + 9300 + k;
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);

    const size_t num_shards = 2 + rng.Uniform(2);
    const Semantics semantics = kAll[rng.Uniform(3)];
    const Query& query =
        fixture_->queries[rng.Uniform(fixture_->queries.size())];

    FaultScript script;
    script.kind = static_cast<MangleKind>(1 + rng.Uniform(6));
    script.server_to_client = rng.Bernoulli(0.5);
    // Request streams are ~150 bytes, response streams corpus-dependent
    // (typically a few hundred to a few thousand); the range covers the
    // frame header, early body, deep body, and occasionally beyond EOF.
    script.byte_offset = rng.Uniform(script.server_to_client ? 1500 : 180);
    script.bit = static_cast<uint32_t>(rng.Uniform(8));
    script.garbage_len = static_cast<uint32_t>(1 + rng.Uniform(64));
    script.seed = seed;

    const std::string context =
        "schedule " + std::to_string(k) + " seed " + std::to_string(seed) +
        " shards " + std::to_string(num_shards) + " " +
        SemanticsName(semantics) + " query '" + query.ToString() + "' " +
        script.ToString();
    SCOPED_TRACE(context);

    const ShardedCorpus& corpus =
        fixture_->sharded.at({num_shards, semantics});
    std::vector<std::unique_ptr<WiredShard>> fleet =
        WireFleet(corpus, script, seed);
    std::vector<shard::ShardBackend*> backends;
    for (auto& wired : fleet) backends.push_back(wired->set.get());

    {
      Coordinator coordinator(backends, corpus.stats, SimOptions(semantics),
                              SimCoordinatorOptions());
      const auto t0 = std::chrono::steady_clock::now();
      const CoordinatorResult result = coordinator.Suggest(query, kGeneration);
      const auto elapsed = std::chrono::steady_clock::now() - t0;

      ASSERT_TRUE(result.status.ok()) << context << ": "
                                      << result.status.ToString();
      EXPECT_FALSE(result.truncated) << context;
      EXPECT_EQ(result.shards_ok, num_shards) << context;
      EXPECT_LT(elapsed, std::chrono::milliseconds(6000))
          << context << ": hung fan-out";
      ExpectSameSuggestions(result.suggestions,
                            fixture_->oracles.at(semantics)->Suggest(query),
                            1e-9, context);
    }
    TearDownFleet(fleet);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// Process-restart failover: a workload is mid-flight when replica 0's
/// socket server of every shard is shut down (the "kill one mid-stream"
/// of the serving demo). Every query before, during and after the kill
/// must still match the oracle — the clients' EOFs become transport
/// retries, the ReplicaSets route to the survivor.
TEST_F(RpcSimTest, ReplicaKilledMidWorkloadFailsOverInvisibly) {
  const Semantics semantics = Semantics::kNodeType;
  const size_t num_shards = 2;
  const ShardedCorpus& corpus = fixture_->sharded.at({num_shards, semantics});
  const uint64_t seed = ShardBaseSeed() + 9500;

  std::vector<std::unique_ptr<WiredShard>> fleet =
      WireFleet(corpus, FaultScript{}, seed);  // kClean: no byte mangling
  std::vector<shard::ShardBackend*> backends;
  for (auto& wired : fleet) backends.push_back(wired->set.get());

  {
    Coordinator coordinator(backends, corpus.stats, SimOptions(semantics),
                            SimCoordinatorOptions());
    const size_t total = fixture_->queries.size();
    for (size_t qi = 0; qi < total; ++qi) {
      if (qi == total / 2) {
        // The kill: both replica-0 socket servers drain and die while the
        // workload keeps coming. Pooled client connections go stale; the
        // next leg that draws one sees EOF and must recover.
        for (auto& wired : fleet) wired->rpc0->Shutdown();
      }
      const Query& query = fixture_->queries[qi];
      const std::string context =
          "query " + std::to_string(qi) + " of " + std::to_string(total) +
          (qi >= total / 2 ? " (after kill)" : " (before kill)");
      const CoordinatorResult result = coordinator.Suggest(query, kGeneration);
      ASSERT_TRUE(result.status.ok()) << context << ": "
                                      << result.status.ToString();
      EXPECT_FALSE(result.truncated) << context;
      ExpectSameSuggestions(result.suggestions,
                            fixture_->oracles.at(semantics)->Suggest(query),
                            1e-9, context);
    }
    // The survivors carried the load: replica 1 answered at least the
    // post-kill half on every shard.
    for (auto& wired : fleet) {
      EXPECT_GE(wired->set->stats().replicas[1].successes, total / 2);
    }
  }
  TearDownFleet(fleet);
}

/// Hedged requests over real sockets: replica 0's responses stall at byte
/// zero (the wire goes silent after the request), so every leg's primary
/// attempt hangs until the hedge fires at the p95-derived delay, the
/// clean replica wins, and the loser is cancelled through a cancel frame.
/// Built for the TSan job: real threads, real sockets, real cancellation.
TEST_F(RpcSimTest, HedgedWireRequestsWinPastStalledReplica) {
  const Semantics semantics = Semantics::kSlca;
  const size_t num_shards = 2;
  const ShardedCorpus& corpus = fixture_->sharded.at({num_shards, semantics});
  const uint64_t seed = ShardBaseSeed() + 9700;

  FaultScript stall;
  stall.kind = MangleKind::kStall;
  stall.server_to_client = true;
  stall.byte_offset = 0;  // the response never comes back
  std::vector<std::unique_ptr<WiredShard>> fleet =
      WireFleet(corpus, stall, seed);

  ThreadPoolOptions popts;
  popts.num_threads = 8;
  ThreadPool hedge_pool(popts);

  // Rebuild the sets in hedged mode over the same wired clients.
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < fleet.size(); ++s) {
    ReplicaSetOptions ropts = SimReplicaOptions(seed + s);
    ropts.hedge_pool = &hedge_pool;
    ropts.hedge_delay_floor = std::chrono::milliseconds(30);
    ropts.hedge_delay_cap = std::chrono::milliseconds(60);
    ropts.hedge_rate_cap = 1.0;  // every leg may hedge: that is the test
    fleet[s]->set = std::make_unique<ReplicaSet>(
        s,
        std::vector<shard::ShardBackend*>{fleet[s]->client0.get(),
                                          fleet[s]->client1.get()},
        ropts);
    backends.push_back(fleet[s]->set.get());
  }

  {
    Coordinator coordinator(backends, corpus.stats, SimOptions(semantics),
                            SimCoordinatorOptions());
    for (size_t qi = 0; qi < 6; ++qi) {
      const Query& query = fixture_->queries[qi];
      const std::string context = "hedged query " + std::to_string(qi);
      const CoordinatorResult result = coordinator.Suggest(query, kGeneration);
      ASSERT_TRUE(result.status.ok()) << context << ": "
                                      << result.status.ToString();
      EXPECT_FALSE(result.truncated) << context;
      ExpectSameSuggestions(result.suggestions,
                            fixture_->oracles.at(semantics)->Suggest(query),
                            1e-9, context);
    }
    // The stalled wire forced hedges, and the clean replica won them.
    uint64_t hedges = 0;
    for (auto& wired : fleet) hedges += wired->set->stats().hedges;
    EXPECT_GE(hedges, 1u);
  }
  TearDownFleet(fleet);
}

}  // namespace
}  // namespace xclean::shardtest
