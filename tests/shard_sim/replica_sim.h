#ifndef XCLEAN_TESTS_SHARD_SIM_REPLICA_SIM_H_
#define XCLEAN_TESTS_SHARD_SIM_REPLICA_SIM_H_

/// Deterministic replica-fault simulation harness, the replication-layer
/// sibling of shard_sim.h: a schedule assigns one ReplicaFaultKind to every
/// replica of every shard, the shards are wrapped in sequential-mode
/// ReplicaSets driven by one shared ManualClock, and the per-shard answers
/// feed the pure Coordinator::Merge. No real sleeps anywhere — backoff,
/// deadline slices and breaker cooldowns all advance the virtual clock, so
/// the same XCLEAN_SHARD_SEED replays routing decisions bit for bit.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "core/query.h"
#include "serve/overload.h"
#include "shard/coordinator.h"
#include "shard/replica_set.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"

namespace xclean::shardtest {

/// Per-replica behaviours the scheduler draws from. Each models one way a
/// replica of a healthy shard can fail the routing layer.
enum class ReplicaFaultKind : uint8_t {
  kHealthy = 0,  ///< real ShardServer at the expected generation
  kDown,         ///< transport error on every attempt (crashed/unreachable)
  kFlaky,        ///< flapping: transport error, success, error, ... per attempt
  kSlow,         ///< burns its whole deadline slice, then refuses empty
  kStale,        ///< healthy but serving generation expected+1 throughout
  kExpired,      ///< admission clock skew: every request arrives expired
  kNumReplicaFaultKinds,
};

inline const char* ReplicaFaultName(ReplicaFaultKind kind) {
  switch (kind) {
    case ReplicaFaultKind::kHealthy:
      return "healthy";
    case ReplicaFaultKind::kDown:
      return "down";
    case ReplicaFaultKind::kFlaky:
      return "flaky";
    case ReplicaFaultKind::kSlow:
      return "slow";
    case ReplicaFaultKind::kStale:
      return "stale";
    case ReplicaFaultKind::kExpired:
      return "expired";
    default:
      return "?";
  }
}

// ---------------------------------------------------------------------------
// Scripted replica backends. All time flows through the shared ManualClock:
// service time is an explicit Advance, a slow replica is an AdvanceTo the
// attempt's deadline — virtual milliseconds, real nanoseconds.

/// Real ShardServer plus a seeded 1–3 ms virtual service time, charged
/// *after* the evaluation so a sliced deadline never refuses a healthy
/// replica spuriously (the slice models the router's patience, and a
/// healthy replica beats it).
class HealthyReplica : public shard::ShardBackend {
 public:
  HealthyReplica(uint32_t shard_id,
                 std::shared_ptr<const delta::LayeredXClean> engine,
                 uint64_t generation, ManualClock* clock, uint64_t seed)
      : clock_(clock), rng_(seed) {
    OverloadControllerOptions overload;
    overload.clock = clock;
    server_ = std::make_unique<shard::ShardServer>(shard_id, engine,
                                                   generation, overload);
  }

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    shard::ShardResponse response = server_->Evaluate(request);
    clock_->Advance(std::chrono::milliseconds(1 + rng_.Uniform(3)));
    return response;
  }

  shard::ShardServer& server() { return *server_; }

 private:
  ManualClock* clock_;
  Rng rng_;
  std::unique_ptr<shard::ShardServer> server_;
};

/// Crashed or unreachable: every attempt costs 1 virtual ms and comes back
/// as a transport error (the only class the routing layer retries).
class DownReplica : public shard::ShardBackend {
 public:
  DownReplica(uint32_t shard_id, ManualClock* clock)
      : shard_id_(shard_id), clock_(clock) {}

  shard::ShardResponse Evaluate(const shard::ShardRequest&) override {
    clock_->Advance(std::chrono::milliseconds(1));
    shard::ShardResponse response;
    response.shard_id = shard_id_;
    response.status = Status::Unavailable("replica transport down");
    return response;
  }

 private:
  const uint32_t shard_id_;
  ManualClock* clock_;
};

/// Flapping transport: attempts alternate error, success, error, ... —
/// the shape that distinguishes retry policy (recovers on the re-send)
/// from a hard-down replica (never recovers).
class FlakyReplica : public shard::ShardBackend {
 public:
  FlakyReplica(uint32_t shard_id,
               std::shared_ptr<const delta::LayeredXClean> engine,
               uint64_t generation, ManualClock* clock, uint64_t seed)
      : healthy_(shard_id, engine, generation, clock, seed),
        down_(shard_id, clock) {}

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    return (attempt_++ % 2 == 0) ? down_.Evaluate(request)
                                 : healthy_.Evaluate(request);
  }

 private:
  HealthyReplica healthy_;
  DownReplica down_;
  uint64_t attempt_ = 0;
};

/// Pathologically slow: burns the *entire* deadline it was given (the
/// router's backup-request slice, or the leg's remainder when it is the
/// last resort), then refuses honestly — truncated, empty, kDeadline, at
/// the expected generation. The refusal is what the breaker's slow-replica
/// signal keys on.
class SlowReplica : public shard::ShardBackend {
 public:
  SlowReplica(uint32_t shard_id, ManualClock* clock)
      : shard_id_(shard_id), clock_(clock) {}

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    clock_->AdvanceTo(request.deadline);
    shard::ShardResponse response;
    response.status = Status::Ok();
    response.shard_id = shard_id_;
    response.generation = request.expected_generation;
    response.truncated = true;
    response.cancel_cause = CancelCause::kDeadline;
    return response;
  }

 private:
  const uint32_t shard_id_;
  ManualClock* clock_;
};

/// Healthy in every respect except the snapshot it serves: a real server
/// pinned one generation ahead, so every answer classifies kStale and is
/// only ever a last-resort fallback.
class StaleReplica : public shard::ShardBackend {
 public:
  StaleReplica(uint32_t shard_id,
               std::shared_ptr<const delta::LayeredXClean> engine,
               uint64_t expected_generation, ManualClock* clock, uint64_t seed)
      : healthy_(shard_id, engine, expected_generation + 1, clock, seed) {}

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    return healthy_.Evaluate(request);
  }

 private:
  HealthyReplica healthy_;
};

/// Admission-path clock skew: the replica sees every deadline as already
/// expired, so the real server refuses at admission — exercising the
/// ShardServerStats::refused counter and the injected-clock admission
/// check end to end.
class ExpiredReplica : public shard::ShardBackend {
 public:
  ExpiredReplica(uint32_t shard_id,
                 std::shared_ptr<const delta::LayeredXClean> engine,
                 uint64_t generation, ManualClock* clock)
      : clock_(clock) {
    OverloadControllerOptions overload;
    overload.clock = clock;
    server_ = std::make_unique<shard::ShardServer>(shard_id, engine,
                                                   generation, overload);
  }

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    shard::ShardRequest skewed = request;
    skewed.deadline = clock_->Now() - std::chrono::milliseconds(1);
    return server_->Evaluate(skewed);
  }

  shard::ShardServer& server() { return *server_; }

 private:
  ManualClock* clock_;
  std::unique_ptr<shard::ShardServer> server_;
};

// ---------------------------------------------------------------------------
// Schedules

struct ReplicaSchedule {
  uint64_t seed = 0;
  size_t corpus = 0;
  size_t num_shards = 0;    ///< 2..5
  size_t num_replicas = 0;  ///< per shard, 2..3
  Semantics semantics = Semantics::kNodeType;
  size_t query_index = 0;
  /// faults[s][r] is replica r of shard s.
  std::vector<std::vector<ReplicaFaultKind>> faults;

  /// Every shard keeps at least one fully healthy replica — the regime in
  /// which the routing layer owes an *exact* answer, not a degraded one.
  bool EveryShardHasHealthy() const {
    for (const auto& shard_faults : faults) {
      bool healthy = false;
      for (ReplicaFaultKind f : shard_faults) {
        if (f == ReplicaFaultKind::kHealthy) healthy = true;
      }
      if (!healthy) return false;
    }
    return true;
  }
  bool Has(ReplicaFaultKind kind) const {
    for (const auto& shard_faults : faults) {
      for (ReplicaFaultKind f : shard_faults) {
        if (f == kind) return true;
      }
    }
    return false;
  }
};

/// Draws one schedule from `seed`. Healthy bias ~0.55 per replica keeps a
/// healthy majority of schedules in the exact-answer regime while every
/// fault kind still appears hundreds of times across a 240-schedule run.
inline ReplicaSchedule MakeReplicaSchedule(uint64_t seed, size_t num_corpora,
                                           size_t num_queries) {
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 0xD1B54A32D192ED03ull);
  ReplicaSchedule schedule;
  schedule.seed = seed;
  schedule.corpus = rng.Uniform(num_corpora);
  schedule.num_shards = 2 + rng.Uniform(4);
  schedule.num_replicas = 2 + rng.Uniform(2);
  static constexpr Semantics kAll[] = {Semantics::kNodeType, Semantics::kSlca,
                                       Semantics::kElca};
  schedule.semantics = kAll[rng.Uniform(3)];
  schedule.query_index = rng.Uniform(num_queries);
  schedule.faults.resize(schedule.num_shards);
  for (size_t s = 0; s < schedule.num_shards; ++s) {
    for (size_t r = 0; r < schedule.num_replicas; ++r) {
      if (rng.Bernoulli(0.55)) {
        schedule.faults[s].push_back(ReplicaFaultKind::kHealthy);
      } else {
        schedule.faults[s].push_back(static_cast<ReplicaFaultKind>(
            1 + rng.Uniform(
                    static_cast<uint64_t>(
                        ReplicaFaultKind::kNumReplicaFaultKinds) -
                    1)));
      }
    }
  }
  return schedule;
}

inline std::string FormatReplicaSchedule(const ReplicaSchedule& schedule) {
  std::string out = "replica_schedule{seed=" + std::to_string(schedule.seed) +
                    " corpus=" + std::to_string(schedule.corpus) +
                    " shards=" + std::to_string(schedule.num_shards) +
                    " replicas=" + std::to_string(schedule.num_replicas) +
                    " semantics=" + SemanticsName(schedule.semantics) +
                    " query=" + std::to_string(schedule.query_index) +
                    " faults=[";
  for (size_t s = 0; s < schedule.faults.size(); ++s) {
    if (s > 0) out += " ";
    out += std::to_string(s) + ":(";
    for (size_t r = 0; r < schedule.faults[s].size(); ++r) {
      if (r > 0) out += ",";
      out += ReplicaFaultName(schedule.faults[s][r]);
    }
    out += ")";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Execution

/// Everything one schedule run produces: the per-shard answers (as the
/// outcome vector Coordinator::Merge consumes) plus the routing-layer
/// counters the budget and accounting invariants are asserted against.
struct ReplicaRun {
  std::vector<shard::ShardOutcome> outcomes;
  std::vector<shard::ReplicaSetStats> set_stats;
  uint32_t max_attempts_per_leg = 0;
};

/// Executes `schedule` against `corpus`: builds fresh replica backends and
/// sequential-mode ReplicaSets over one shared ManualClock, evaluates one
/// leg per shard in shard-id order, and gathers the answers. Fresh state
/// per run — breakers, counters and the virtual clock cannot leak between
/// schedules.
inline ReplicaRun ExecuteReplicaSchedule(const ReplicaSchedule& schedule,
                                         const shard::ShardedCorpus& corpus,
                                         const Query& query,
                                         uint64_t expected_generation) {
  ManualClock clock;
  ReplicaRun run;
  for (uint32_t s = 0; s < schedule.num_shards; ++s) {
    std::vector<std::unique_ptr<shard::ShardBackend>> backends;
    std::vector<shard::ShardBackend*> raw;
    for (size_t r = 0; r < schedule.num_replicas; ++r) {
      const uint64_t seed =
          schedule.seed * 0x9E3779B97F4A7C15ull + s * 64 + r;
      std::unique_ptr<shard::ShardBackend> backend;
      switch (schedule.faults[s][r]) {
        case ReplicaFaultKind::kHealthy:
          backend = std::make_unique<HealthyReplica>(
              s, corpus.engine, expected_generation, &clock, seed);
          break;
        case ReplicaFaultKind::kDown:
          backend = std::make_unique<DownReplica>(s, &clock);
          break;
        case ReplicaFaultKind::kFlaky:
          backend = std::make_unique<FlakyReplica>(
              s, corpus.engine, expected_generation, &clock, seed);
          break;
        case ReplicaFaultKind::kSlow:
          backend = std::make_unique<SlowReplica>(s, &clock);
          break;
        case ReplicaFaultKind::kStale:
          backend = std::make_unique<StaleReplica>(
              s, corpus.engine, expected_generation, &clock, seed);
          break;
        default:
          backend = std::make_unique<ExpiredReplica>(
              s, corpus.engine, expected_generation, &clock);
          break;
      }
      raw.push_back(backend.get());
      backends.push_back(std::move(backend));
    }

    shard::ReplicaSetOptions ropts;
    ropts.clock = &clock;
    ropts.seed = schedule.seed * 0x2545F4914F6CDD1Dull + s;
    shard::ReplicaSet set(s, raw, ropts);
    run.max_attempts_per_leg = set.max_attempts_per_leg();

    shard::ShardRequest request;
    request.query = query;
    request.expected_generation = expected_generation;
    // A finite *virtual* deadline: generous enough that only a scripted
    // last-resort slow replica can exhaust it, finite so AdvanceTo has a
    // destination.
    request.deadline = clock.Now() + std::chrono::seconds(30);

    shard::ShardOutcome outcome;
    outcome.response = set.Evaluate(request);
    outcome.kind = outcome.response.status.ok()
                       ? shard::ShardOutcomeKind::kOk
                       : shard::ShardOutcomeKind::kError;
    run.outcomes.push_back(std::move(outcome));
    run.set_stats.push_back(set.stats());
  }
  return run;
}

}  // namespace xclean::shardtest

#endif  // XCLEAN_TESTS_SHARD_SIM_REPLICA_SIM_H_
