#ifndef XCLEAN_TESTS_SHARD_SIM_SHARD_SIM_H_
#define XCLEAN_TESTS_SHARD_SIM_SHARD_SIM_H_

/// Deterministic multi-shard simulation harness (thundercracker-style):
/// a fault *schedule* — one FaultKind per shard, drawn from a seeded RNG —
/// is executed against real ShardServers sequentially, producing the exact
/// outcome vector the threaded fan-out could have produced, which then
/// drives the pure Coordinator::Merge. No sleeps, no threads, no clocks in
/// the schedule path: the same seed replays the same schedule, evaluation
/// order and merge, bit for bit. A failing schedule prints itself plus the
/// XCLEAN_SHARD_SEED incantation to replay it.

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "core/query.h"
#include "core/xclean.h"
#include "shard/coordinator.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"

namespace xclean::shardtest {

/// Per-shard behaviours the scheduler draws from. Each models one failure
/// the coordinator's degradation policy must absorb.
enum class FaultKind : uint8_t {
  kHealthy = 0,    ///< answers in full, on time, at the expected generation
  kSlow,           ///< never answers within the fan-out deadline (kTimeout)
  kCrash,          ///< evaluation dies (injected status / transport error)
  kShed,           ///< overload ladder pinned at kShed: Unavailable
  kReduced,        ///< ladder pinned at kReduced: partial answer, truncated
  kStaleReplica,   ///< serves an older/newer snapshot generation throughout
  kMidQuerySwap,   ///< snapshot swap lands *during* the evaluation
  kTightDeadline,  ///< deadline already expired: cooperative cancellation
  kNumFaultKinds,
};

inline const char* FaultName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHealthy:
      return "healthy";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kShed:
      return "shed";
    case FaultKind::kReduced:
      return "reduced";
    case FaultKind::kStaleReplica:
      return "stale";
    case FaultKind::kMidQuerySwap:
      return "swap";
    case FaultKind::kTightDeadline:
      return "deadline";
    default:
      return "?";
  }
}

struct SimSchedule {
  uint64_t seed = 0;
  size_t corpus = 0;       ///< index into the harness's cached corpora
  size_t num_shards = 0;   ///< 2..7
  Semantics semantics = Semantics::kNodeType;
  size_t query_index = 0;  ///< index into the corpus's dirty-query set
  std::vector<FaultKind> faults;  ///< faults[s] is shard s's behaviour

  bool AllHealthy() const {
    for (FaultKind f : faults) {
      if (f != FaultKind::kHealthy) return false;
    }
    return true;
  }
  bool Has(FaultKind kind) const {
    for (FaultKind f : faults) {
      if (f == kind) return true;
    }
    return false;
  }
};

/// Draws one schedule from `seed`. Roughly half the shards stay healthy so
/// most schedules exercise the partial-merge path without starving the
/// all-healthy oracle check.
inline SimSchedule MakeSchedule(uint64_t seed, size_t num_corpora,
                                size_t num_queries) {
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull);
  SimSchedule schedule;
  schedule.seed = seed;
  schedule.corpus = rng.Uniform(num_corpora);
  schedule.num_shards = 2 + rng.Uniform(6);
  static constexpr Semantics kAll[] = {Semantics::kNodeType, Semantics::kSlca,
                                       Semantics::kElca};
  schedule.semantics = kAll[rng.Uniform(3)];
  schedule.query_index = rng.Uniform(num_queries);
  for (size_t s = 0; s < schedule.num_shards; ++s) {
    if (rng.Bernoulli(0.55)) {
      schedule.faults.push_back(FaultKind::kHealthy);
    } else {
      schedule.faults.push_back(static_cast<FaultKind>(
          1 + rng.Uniform(static_cast<uint64_t>(FaultKind::kNumFaultKinds) -
                          1)));
    }
  }
  return schedule;
}

inline std::string FormatSchedule(const SimSchedule& schedule) {
  std::string out = "schedule{seed=" + std::to_string(schedule.seed) +
                    " corpus=" + std::to_string(schedule.corpus) +
                    " shards=" + std::to_string(schedule.num_shards) +
                    " semantics=" + SemanticsName(schedule.semantics) +
                    " query=" + std::to_string(schedule.query_index) +
                    " faults=[";
  for (size_t s = 0; s < schedule.faults.size(); ++s) {
    if (s > 0) out += ",";
    out += FaultName(schedule.faults[s]);
  }
  out += "]}";
  return out;
}

/// Executes `schedule` against `corpus`, returning the outcome vector a
/// fan-out would gather. Shards are evaluated one at a time in shard-id
/// order — every interleaving the real fan-out could produce is equivalent
/// to *some* outcome vector, and sequential execution pins one
/// deterministically. Fresh ShardServers are built per run so pinned tiers
/// and published generations cannot leak between schedules.
///
/// Fault realisation:
///   kSlow          outcome synthesized as kTimeout (the coordinator's view
///                  of a leg that missed the deadline; the real clock-based
///                  path is covered by the threaded slow-shard test)
///   kCrash         Status armed on the shard's injection point when the
///                  build has fault injection; synthesized kError otherwise
///   kShed/kReduced OverloadControllerOptions::forced_tier
///   kStaleReplica  server constructed at generation expected+1
///   kMidQuerySwap  callback armed on the core anchor loop publishes
///                  expected+1 mid-evaluation (falls back to kStaleReplica
///                  when injection is compiled out)
///   kTightDeadline request deadline already in the past
inline std::vector<shard::ShardOutcome> ExecuteSchedule(
    const SimSchedule& schedule, const shard::ShardedCorpus& corpus,
    const Query& query, uint64_t expected_generation) {
  std::vector<shard::ShardOutcome> outcomes;
  for (uint32_t s = 0; s < schedule.num_shards; ++s) {
    FaultKind fault = schedule.faults[s];
    if (fault == FaultKind::kSlow) {
      outcomes.push_back({shard::ShardOutcomeKind::kTimeout, {}});
      continue;
    }
    if (fault == FaultKind::kCrash && !fault::Enabled()) {
      shard::ShardOutcome outcome;
      outcome.kind = shard::ShardOutcomeKind::kError;
      outcome.response.status = Status::Unavailable("synthesized crash");
      outcomes.push_back(std::move(outcome));
      continue;
    }
    if (fault == FaultKind::kMidQuerySwap && !fault::Enabled()) {
      fault = FaultKind::kStaleReplica;
    }

    OverloadControllerOptions overload;
    if (fault == FaultKind::kShed) {
      overload.forced_tier = static_cast<int>(ServiceTier::kShed);
    } else if (fault == FaultKind::kReduced) {
      overload.forced_tier = static_cast<int>(ServiceTier::kReduced);
    }
    const uint64_t generation = fault == FaultKind::kStaleReplica
                                    ? expected_generation + 1
                                    : expected_generation;
    shard::ShardServer server(s, corpus.engine, generation, overload);

    shard::ShardRequest request;
    request.query = query;
    if (fault == FaultKind::kTightDeadline) {
      request.deadline = std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1);
    }

    const std::string point = "shard.evaluate." + std::to_string(s);
    if (fault == FaultKind::kCrash) {
      fault::ArmStatus(point, Status::Unavailable("injected shard crash"),
                       /*times=*/1);
    } else if (fault == FaultKind::kMidQuerySwap) {
      fault::ArmCallback(
          "delta.anchor",
          [&server, expected_generation] {
            server.PublishGeneration(expected_generation + 1);
          },
          /*times=*/1);
    }

    shard::ShardOutcome outcome;
    outcome.kind = shard::ShardOutcomeKind::kOk;
    outcome.response = server.Evaluate(request);
    if (fault == FaultKind::kCrash) {
      fault::Disarm(point);
      // An injected transport error surfaces to the coordinator as a
      // failed leg, not a polite in-band refusal.
      outcome.kind = shard::ShardOutcomeKind::kError;
    } else if (fault == FaultKind::kMidQuerySwap) {
      fault::Disarm("delta.anchor");
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace xclean::shardtest

#endif  // XCLEAN_TESTS_SHARD_SIM_SHARD_SIM_H_
