/// The replication-layer proof harness: seeded replica-fault schedules
/// (crashed, flapping, slow, stale and clock-skewed replicas in every
/// combination the scheduler draws) executed deterministically against
/// sequential-mode ReplicaSets under one virtual clock, with the routed
/// answers checked against the replication invariants:
///
///   (a) any-one-replica-down — whatever single fault kind strikes one
///       replica of every shard, the merged ranking equals the unsharded
///       oracle exactly: failover is invisible in the answer;
///   (b) budgets — backend sends per leg never exceed
///       1 + max_retries + max_failovers, on every schedule;
///   (c) exactness — when every shard keeps one healthy replica, the
///       merged ranking equals the oracle and is not truncated;
///   (d) accounting — attempts, retries and failovers reconcile, and
///       sequential mode never hedges;
///   (e) purity — Coordinator::Merge over the gathered outcomes is
///       replayable bit for bit;
///   (f) breakers — an always-down replica trips its breaker after a
///       deterministic number of failures, traffic shifts to the sibling,
///       and the cooled-down breaker probes half-open on schedule.
///
/// Every assertion is wrapped in the failing schedule's description plus
/// the XCLEAN_SHARD_SEED needed to replay it. The threaded hedging path
/// (real clock, real sleeps, CancelToken losers) is covered by the
/// stress-labelled tests at the bottom, built for the TSan CI job.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/xclean.h"
#include "index/xml_index.h"
#include "shard/coordinator.h"
#include "shard/replica_set.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_sim/replica_sim.h"
#include "tests/shard_testutil.h"

namespace xclean::shardtest {
namespace {

using shard::BreakerState;
using shard::BuildShardedCorpus;
using shard::Coordinator;
using shard::CoordinatorOptions;
using shard::CoordinatorResult;
using shard::ReplicaSet;
using shard::ReplicaSetOptions;
using shard::ReplicaSetStats;
using shard::ShardedCorpus;
using shard::ShardedCorpusOptions;
using shard::ShardOutcome;
using shard::ShardOutcomeKind;
using shard::ShardServer;

constexpr uint64_t kGeneration = 23;
constexpr size_t kNumCorpora = 2;
constexpr size_t kNumSchedules = 240;  // CI bar: >= 240 seeded schedules
constexpr size_t kNumQueries = 24;

XCleanOptions SimOptions(Semantics semantics) {
  XCleanOptions options;
  options.gamma = 0;  // the exactness contract is the unbounded config's
  options.semantics = semantics;
  options.top_k = 50;
  return options;
}

CoordinatorOptions SimCoordinatorOptions() {
  CoordinatorOptions copts;
  copts.top_k = 50;
  return copts;
}

/// Everything derivable from one corpus seed, built once and shared by all
/// schedules: unsharded oracles, the dirty-query set, and the sharded
/// builds for every (shard count, semantics) a schedule can draw.
struct CorpusFixture {
  std::unique_ptr<XmlIndex> oracle_index;
  std::map<Semantics, std::unique_ptr<XClean>> oracles;
  std::vector<Query> queries;
  std::map<std::pair<size_t, Semantics>, ShardedCorpus> sharded;
};

class ReplicaSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixtures_ = new std::vector<CorpusFixture>(kNumCorpora);
    const uint64_t base = ShardBaseSeed();
    static constexpr Semantics kAll[] = {
        Semantics::kNodeType, Semantics::kSlca, Semantics::kElca};
    for (size_t c = 0; c < kNumCorpora; ++c) {
      CorpusFixture& fx = (*fixtures_)[c];
      const uint64_t seed = base + 7000 + c;
      fx.oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
      fx.queries = DirtyQueries(*fx.oracle_index, seed);
      for (Semantics semantics : kAll) {
        fx.oracles[semantics] =
            std::make_unique<XClean>(*fx.oracle_index, SimOptions(semantics));
        for (size_t num_shards = 2; num_shards <= 5; ++num_shards) {
          ShardedCorpusOptions sopts;
          sopts.num_shards = num_shards;
          sopts.xclean = SimOptions(semantics);
          Result<ShardedCorpus> corpus = BuildShardedCorpus(
              RandomCorpusTree(seed), sopts, kGeneration);
          ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
          fx.sharded.emplace(std::make_pair(num_shards, semantics),
                             std::move(corpus.value()));
        }
      }
    }
  }

  static void TearDownTestSuite() {
    delete fixtures_;
    fixtures_ = nullptr;
  }

  static std::vector<CorpusFixture>* fixtures_;
};

std::vector<CorpusFixture>* ReplicaSimTest::fixtures_ = nullptr;

/// (a) Any one replica down, systematically: for every fault kind and
/// every replica position, strike that position on *every* shard at once
/// (the worst correlated single-replica failure) and require the merged
/// ranking to equal the unsharded oracle — under all three semantics.
TEST_F(ReplicaSimTest, AnyOneReplicaDownMatchesOracleExactly) {
  static constexpr Semantics kAll[] = {
      Semantics::kNodeType, Semantics::kSlca, Semantics::kElca};
  CorpusFixture& fx = (*fixtures_)[0];
  const Query& query = fx.queries[1];  // dirty variant of a sampled query

  for (Semantics semantics : kAll) {
    const ShardedCorpus& corpus = fx.sharded.at({3u, semantics});
    const std::vector<Suggestion> oracle =
        fx.oracles.at(semantics)->Suggest(query);
    for (uint8_t k = 1;
         k < static_cast<uint8_t>(ReplicaFaultKind::kNumReplicaFaultKinds);
         ++k) {
      const ReplicaFaultKind kind = static_cast<ReplicaFaultKind>(k);
      for (size_t r = 0; r < 3; ++r) {
        ReplicaSchedule schedule;
        schedule.seed = ShardBaseSeed() + 100 * k + r;
        schedule.num_shards = 3;
        schedule.num_replicas = 3;
        schedule.semantics = semantics;
        schedule.faults.assign(
            3, std::vector<ReplicaFaultKind>(3, ReplicaFaultKind::kHealthy));
        for (size_t s = 0; s < 3; ++s) schedule.faults[s][r] = kind;
        SCOPED_TRACE(FormatReplicaSchedule(schedule));

        const ReplicaRun run =
            ExecuteReplicaSchedule(schedule, corpus, query, kGeneration);
        const CoordinatorResult result = Coordinator::Merge(
            *corpus.stats, SimOptions(semantics), SimCoordinatorOptions(),
            kGeneration, run.outcomes);
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_FALSE(result.truncated);
        EXPECT_EQ(result.shards_ok, 3u);
        ExpectSameSuggestions(result.suggestions, oracle, 1e-9,
                              "one-replica-down vs oracle");
        for (const ReplicaSetStats& stats : run.set_stats) {
          EXPECT_LE(stats.attempts, run.max_attempts_per_leg);
        }
      }
    }
  }
}

/// (b)–(e) over the seeded schedule sweep.
TEST_F(ReplicaSimTest, SeededReplicaSchedulesUpholdInvariants) {
  const uint64_t base = ShardBaseSeed();
  const CoordinatorOptions copts = SimCoordinatorOptions();
  size_t exact = 0, degraded = 0, unavailable = 0;

  for (uint64_t round = 0; round < kNumSchedules; ++round) {
    const ReplicaSchedule schedule =
        MakeReplicaSchedule(base + round, kNumCorpora, kNumQueries);
    CorpusFixture& fx = (*fixtures_)[schedule.corpus];
    ASSERT_LT(schedule.query_index, fx.queries.size());
    const Query& query = fx.queries[schedule.query_index];
    const ShardedCorpus& corpus =
        fx.sharded.at({schedule.num_shards, schedule.semantics});
    SCOPED_TRACE(FormatReplicaSchedule(schedule) +
                 " — replay with XCLEAN_SHARD_SEED=" + std::to_string(base));

    const ReplicaRun run =
        ExecuteReplicaSchedule(schedule, corpus, query, kGeneration);
    ASSERT_EQ(run.outcomes.size(), schedule.num_shards);

    // (b) the hard per-leg bound, and (d) the accounting identities. One
    // leg per set, sequential mode: every attempt is the first, a retry,
    // or a failover, and hedging never happens without a pool.
    for (const ReplicaSetStats& stats : run.set_stats) {
      EXPECT_EQ(stats.legs, 1u);
      EXPECT_LE(stats.attempts, run.max_attempts_per_leg);
      EXPECT_LE(stats.attempts, stats.legs + stats.retries + stats.failovers);
      EXPECT_EQ(stats.hedges, 0u);
      EXPECT_EQ(stats.hedge_wins, 0u);
      EXPECT_EQ(stats.losers_cancelled, 0u);
      uint64_t replica_attempts = 0;
      for (const auto& replica : stats.replicas) {
        replica_attempts += replica.attempts;
      }
      EXPECT_EQ(replica_attempts, stats.attempts);
    }

    const CoordinatorResult result = Coordinator::Merge(
        *corpus.stats, SimOptions(schedule.semantics), copts, kGeneration,
        run.outcomes);

    // (e) Merge is pure: replaying the same outcome vector reproduces the
    // answer bit for bit.
    const CoordinatorResult replay = Coordinator::Merge(
        *corpus.stats, SimOptions(schedule.semantics), copts, kGeneration,
        run.outcomes);
    ASSERT_EQ(replay.suggestions.size(), result.suggestions.size());
    for (size_t i = 0; i < result.suggestions.size(); ++i) {
      EXPECT_EQ(replay.suggestions[i].words, result.suggestions[i].words);
      EXPECT_EQ(replay.suggestions[i].score, result.suggestions[i].score);
      EXPECT_EQ(replay.suggestions[i].entity_count,
                result.suggestions[i].entity_count);
    }

    if (!result.status.ok()) {
      ++unavailable;
      continue;
    }

    if (schedule.EveryShardHasHealthy()) {
      // (c) a healthy replica per shard is enough for an exact answer:
      // whatever the siblings did, routing found the healthy one within
      // budget and the merge saw only full, fresh legs.
      EXPECT_FALSE(result.truncated);
      EXPECT_EQ(result.shards_ok, schedule.num_shards);
      ExpectSameSuggestions(result.suggestions,
                            fx.oracles.at(schedule.semantics)->Suggest(query),
                            1e-9, "healthy-replica-per-shard vs oracle");
      ++exact;
    } else {
      ++degraded;
    }
  }

  // The scheduler must exercise all three regimes; a drift in its
  // distribution would quietly hollow the suite out.
  EXPECT_GE(exact, 60u);
  EXPECT_GE(degraded, 30u);
  EXPECT_GE(exact + degraded + unavailable, kNumSchedules);
}

/// Every replica fault kind must occur in the pinned schedule set.
TEST_F(ReplicaSimTest, ScheduleGeneratorCoversAllReplicaFaultKinds) {
  const uint64_t base = ShardBaseSeed();
  std::map<ReplicaFaultKind, size_t> seen;
  for (uint64_t round = 0; round < kNumSchedules; ++round) {
    const ReplicaSchedule schedule =
        MakeReplicaSchedule(base + round, kNumCorpora, kNumQueries);
    for (const auto& shard_faults : schedule.faults) {
      for (ReplicaFaultKind f : shard_faults) ++seen[f];
    }
  }
  for (uint8_t k = 0;
       k < static_cast<uint8_t>(ReplicaFaultKind::kNumReplicaFaultKinds);
       ++k) {
    EXPECT_GT(seen[static_cast<ReplicaFaultKind>(k)], 0u)
        << ReplicaFaultName(static_cast<ReplicaFaultKind>(k));
  }
}

/// (f) Breaker determinism under the injected clock: an always-down
/// replica accumulates exactly min_samples failures before its error EWMA
/// crosses the trip threshold, the breaker opens, traffic shifts wholly to
/// the sibling, and after the cooldown the next leg spends its one
/// half-open probe on the dead replica and re-opens. Every transition at
/// an exact, replayable leg index.
TEST_F(ReplicaSimTest, AlwaysDownReplicaTripsBreakerDeterministically) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});
  const Query& query = fx.queries[1];

  ManualClock clock;
  DownReplica down(0, &clock);
  HealthyReplica healthy(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed());
  ReplicaSetOptions ropts;
  ropts.clock = &clock;
  ReplicaSet set(0, {&down, &healthy}, ropts);

  auto evaluate = [&] {
    shard::ShardRequest request;
    request.query = query;
    request.expected_generation = kGeneration;
    request.deadline = clock.Now() + std::chrono::seconds(30);
    return set.Evaluate(request);
  };

  // Legs 1..4: selection prefers the lower index, so each leg burns one
  // attempt on the dead replica, retries, and succeeds on the sibling.
  // With error_alpha = 0.2 the EWMA after n straight failures is
  // 1 - 0.8^n, crossing trip_error_rate = 0.5 exactly at n = 4 — the same
  // step min_samples unlocks tripping.
  for (int leg = 1; leg <= 4; ++leg) {
    const shard::ShardResponse response = evaluate();
    ASSERT_TRUE(response.status.ok()) << "leg " << leg;
    EXPECT_FALSE(response.truncated) << "leg " << leg;
    EXPECT_EQ(set.breaker_state(0),
              leg < 4 ? BreakerState::kClosed : BreakerState::kOpen)
        << "leg " << leg;
    EXPECT_EQ(set.breaker_state(1), BreakerState::kClosed) << "leg " << leg;
  }
  ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.legs, 4u);
  EXPECT_EQ(stats.attempts, 8u);  // each leg: dead primary + healthy retry
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_EQ(stats.replicas[0].transport_errors, 4u);
  EXPECT_EQ(stats.replicas[0].breaker_opens, 1u);

  // Open breaker: the dead replica is not even attempted.
  const shard::ShardResponse shielded = evaluate();
  ASSERT_TRUE(shielded.status.ok());
  stats = set.stats();
  EXPECT_EQ(stats.attempts, 9u);  // exactly one send, straight to healthy
  EXPECT_EQ(stats.replicas[0].attempts, 4u);

  // Cooldown elapses: the next leg spends the half-open probe on the dead
  // replica, fails, and the breaker re-opens — then the retry succeeds on
  // the sibling. Deterministic, no sleeps.
  clock.Advance(ropts.breaker.open_cooldown +
                std::chrono::milliseconds(1));
  const shard::ShardResponse probed = evaluate();
  ASSERT_TRUE(probed.status.ok());
  stats = set.stats();
  EXPECT_EQ(set.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(stats.replicas[0].attempts, 5u);  // the probe
  EXPECT_EQ(stats.replicas[0].breaker_opens, 2u);
}

/// A request that is already dead on arrival still makes exactly one
/// attempt, so the primary refuses politely and the new refused counter
/// accounts for it — parity with the direct-ShardServer path.
TEST_F(ReplicaSimTest, DeadOnArrivalMakesExactlyOneAttempt) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  ManualClock clock;
  HealthyReplica primary(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed());
  HealthyReplica sibling(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed() + 1);
  ReplicaSetOptions ropts;
  ropts.clock = &clock;
  ReplicaSet set(0, {&primary, &sibling}, ropts);

  shard::ShardRequest request;
  request.query = fx.queries[1];
  request.expected_generation = kGeneration;
  request.deadline = clock.Now() - std::chrono::milliseconds(5);

  const shard::ShardResponse response = set.Evaluate(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.truncated);
  EXPECT_TRUE(response.partials.empty());
  EXPECT_EQ(response.cancel_cause, CancelCause::kDeadline);

  const ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(primary.server().stats().refused, 1u);
  EXPECT_EQ(sibling.server().stats().refused, 0u);
}

/// The clock-skewed replica refuses at admission through the injected
/// clock, the refusal is counted in ShardServerStats::refused, and the
/// router fails over to the sibling for a full answer.
TEST_F(ReplicaSimTest, ExpiredReplicaCountsRefusalsAndFailsOver) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  ManualClock clock;
  ExpiredReplica skewed(0, corpus.engine, kGeneration, &clock);
  HealthyReplica healthy(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed());
  ReplicaSetOptions ropts;
  ropts.clock = &clock;
  ReplicaSet set(0, {&skewed, &healthy}, ropts);

  shard::ShardRequest request;
  request.query = fx.queries[1];
  request.expected_generation = kGeneration;
  request.deadline = clock.Now() + std::chrono::seconds(30);

  const shard::ShardResponse response = set.Evaluate(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.truncated);
  EXPECT_EQ(response.generation, kGeneration);

  const ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.replicas[0].refusals, 1u);
  EXPECT_EQ(skewed.server().stats().refused, 1u);
  EXPECT_EQ(skewed.server().stats().requests, 1u);
}

/// A replica whose behaviour the test flips between legs: down (transport
/// errors), shedding (alive but refusing under load), or healthy — the
/// trajectory a real replica follows through an outage and its recovery.
class ModalReplica : public shard::ShardBackend {
 public:
  enum class Mode { kDown, kShed, kHealthy };

  ModalReplica(uint32_t shard_id,
               std::shared_ptr<const delta::LayeredXClean> engine,
               uint64_t generation, ManualClock* clock, uint64_t seed)
      : shard_id_(shard_id),
        clock_(clock),
        down_(shard_id, clock),
        healthy_(shard_id, engine, generation, clock, seed) {}

  Mode mode = Mode::kDown;

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    switch (mode) {
      case Mode::kDown:
        return down_.Evaluate(request);
      case Mode::kShed: {
        clock_->Advance(std::chrono::milliseconds(1));
        shard::ShardResponse response;
        response.shard_id = shard_id_;
        response.status = Status::Unavailable("ladder shed");
        response.tier = ServiceTier::kShed;
        return response;
      }
      default:
        return healthy_.Evaluate(request);
    }
  }

 private:
  const uint32_t shard_id_;
  ManualClock* clock_;
  DownReplica down_;
  HealthyReplica healthy_;
};

/// A shed answered by a half-open probe resolves the breaker neither way
/// (load, not fault) — the probe must be handed back, not stranded: the
/// breaker stays half-open, and once the replica recovers a later leg
/// probes again and closes it. A leaked probe would exclude the replica
/// from rotation forever.
TEST_F(ReplicaSimTest, ShedDuringHalfOpenProbeReleasesTheProbe) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});
  const Query& query = fx.queries[1];

  ManualClock clock;
  ModalReplica modal(0, corpus.engine, kGeneration, &clock, ShardBaseSeed());
  HealthyReplica healthy(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed() + 1);
  ReplicaSetOptions ropts;
  ropts.clock = &clock;
  ReplicaSet set(0, {&modal, &healthy}, ropts);

  auto evaluate = [&] {
    shard::ShardRequest request;
    request.query = query;
    request.expected_generation = kGeneration;
    request.deadline = clock.Now() + std::chrono::seconds(30);
    return set.Evaluate(request);
  };

  // Four legs against the down replica trip its breaker (same trajectory
  // as AlwaysDownReplicaTripsBreakerDeterministically).
  for (int leg = 1; leg <= 4; ++leg) {
    ASSERT_TRUE(evaluate().status.ok()) << "leg " << leg;
  }
  ASSERT_EQ(set.breaker_state(0), BreakerState::kOpen);

  // Cooldown elapses; the probe lands on the replica, which now sheds.
  // The leg fails over to the sibling, and the breaker must be left
  // half-open with the probe re-armed.
  modal.mode = ModalReplica::Mode::kShed;
  clock.Advance(ropts.breaker.open_cooldown + std::chrono::milliseconds(1));
  const shard::ShardResponse shed_leg = evaluate();
  ASSERT_TRUE(shed_leg.status.ok());
  EXPECT_EQ(set.breaker_state(0), BreakerState::kHalfOpen);

  // Recovered: the next leg spends a fresh probe on the replica and the
  // success closes the breaker — the replica is back in rotation.
  modal.mode = ModalReplica::Mode::kHealthy;
  const shard::ShardResponse recovered = evaluate();
  ASSERT_TRUE(recovered.status.ok());
  EXPECT_FALSE(recovered.truncated);
  EXPECT_EQ(set.breaker_state(0), BreakerState::kClosed);

  const ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.replicas[0].sheds, 1u);
  EXPECT_EQ(stats.replicas[0].breaker_opens, 1u);
}

/// The 64-replica boundary the selection bitmask imposes is enforced at
/// construction, not on the serving path — a maximal configuration builds
/// and serves normally.
TEST_F(ReplicaSimTest, SixtyFourReplicaConfigurationServes) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  ManualClock clock;
  HealthyReplica healthy(0, corpus.engine, kGeneration, &clock,
                         ShardBaseSeed());
  std::vector<std::unique_ptr<DownReplica>> downs;
  std::vector<shard::ShardBackend*> raw{&healthy};
  while (raw.size() < 64) {
    downs.push_back(std::make_unique<DownReplica>(0, &clock));
    raw.push_back(downs.back().get());
  }
  ReplicaSet set(0, raw, [&] {
    ReplicaSetOptions ropts;
    ropts.clock = &clock;
    return ropts;
  }());
  EXPECT_EQ(set.num_replicas(), 64u);

  shard::ShardRequest request;
  request.query = fx.queries[1];
  request.expected_generation = kGeneration;
  request.deadline = clock.Now() + std::chrono::seconds(30);
  const shard::ShardResponse response = set.Evaluate(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.truncated);
  EXPECT_EQ(set.stats().attempts, 1u);  // straight to the healthy primary
}

// ---------------------------------------------------------------------------
// Threaded hedging (real clock, real sleeps) — the TSan targets.

/// Wraps a real ShardServer behind a fixed real-time delay, cooperatively
/// watching the hedged-loser kill switch during the sleep.
class DelayBackend : public shard::ShardBackend {
 public:
  DelayBackend(uint32_t shard_id,
               std::shared_ptr<const delta::LayeredXClean> engine,
               uint64_t generation, std::chrono::milliseconds delay)
      : delay_(delay), server_(shard_id, engine, generation) {}

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override {
    const auto step = std::chrono::milliseconds(1);
    for (auto waited = std::chrono::milliseconds(0); waited < delay_;
         waited += step) {
      if (request.external_cancel != nullptr &&
          request.external_cancel->load(std::memory_order_acquire)) {
        shard::ShardResponse response;
        response.status = Status::Ok();
        response.shard_id = server_.shard_id();
        response.generation = request.expected_generation;
        response.truncated = true;
        response.cancel_cause = CancelCause::kExternal;
        return response;
      }
      std::this_thread::sleep_for(step);
    }
    return server_.Evaluate(request);
  }

 private:
  const std::chrono::milliseconds delay_;
  ShardServer server_;
};

/// A slow primary and a fast sibling under a real hedge pool: the hedge
/// fires after the delay floor, the fast sibling wins, and the slow loser
/// is cancelled through its external-cancel hook. Run under TSan via the
/// stress label.
TEST_F(ReplicaSimTest, HedgedFanoutWinsOnSiblingAndCancelsLoser) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  DelayBackend slow(0, corpus.engine, kGeneration,
                    std::chrono::milliseconds(400));
  ShardServer fast(0, corpus.engine, kGeneration);

  ThreadPoolOptions popts;
  popts.num_threads = 4;
  ThreadPool pool(popts);
  ReplicaSetOptions ropts;
  ropts.hedge_pool = &pool;
  ropts.hedge_delay_floor = std::chrono::milliseconds(5);
  ropts.hedge_delay_cap = std::chrono::milliseconds(10);
  ropts.hedge_rate_cap = 1.0;  // this test wants every leg hedged
  ReplicaSet set(0, {&slow, &fast}, ropts);

  for (int leg = 0; leg < 3; ++leg) {
    shard::ShardRequest request;
    request.query = fx.queries[1];
    request.expected_generation = kGeneration;
    request.deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    const shard::ShardResponse response = set.Evaluate(request);
    ASSERT_TRUE(response.status.ok()) << "leg " << leg;
    EXPECT_FALSE(response.truncated) << "leg " << leg;
    EXPECT_EQ(response.generation, kGeneration) << "leg " << leg;
  }

  const ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.legs, 3u);
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_GE(stats.hedge_wins, 1u);
  EXPECT_GE(stats.losers_cancelled, 1u);
  EXPECT_LE(stats.attempts, 3u * set.max_attempts_per_leg());
}

/// Losing a hedge race is not a failure: the cancelled loser comes back as
/// an externally-cancelled refusal, and that must never feed the breaker —
/// otherwise sustained hedging trips a healthy-but-slower replica out of
/// rotation (min_samples straight "failures" would open it by leg 4).
TEST_F(ReplicaSimTest, CancelledHedgeLosersDoNotTripTheBreaker) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  DelayBackend slow(0, corpus.engine, kGeneration,
                    std::chrono::milliseconds(400));
  ShardServer fast(0, corpus.engine, kGeneration);

  ThreadPoolOptions popts;
  popts.num_threads = 4;
  ThreadPool pool(popts);
  ReplicaSetOptions ropts;
  ropts.hedge_pool = &pool;
  ropts.hedge_delay_floor = std::chrono::milliseconds(5);
  ropts.hedge_delay_cap = std::chrono::milliseconds(10);
  ropts.hedge_rate_cap = 1.0;
  ReplicaSet set(0, {&slow, &fast}, ropts);

  for (int leg = 0; leg < 6; ++leg) {
    shard::ShardRequest request;
    request.query = fx.queries[1];
    request.expected_generation = kGeneration;
    request.deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    const shard::ShardResponse response = set.Evaluate(request);
    ASSERT_TRUE(response.status.ok()) << "leg " << leg;
    EXPECT_FALSE(response.truncated) << "leg " << leg;
  }

  const ReplicaSetStats stats = set.stats();
  EXPECT_GE(stats.hedge_wins, 4u);  // the slow primary lost nearly every race
  EXPECT_EQ(stats.replicas[0].breaker_opens, 0u);
  EXPECT_EQ(set.breaker_state(0), BreakerState::kClosed);
}

/// hedge_rate_cap = 0 disables hedging outright: the wanted hedge is
/// counted as suppressed and the slow primary is simply waited out.
TEST_F(ReplicaSimTest, HedgeRateCapZeroSuppressesAllHedges) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({2u, Semantics::kNodeType});

  DelayBackend slow(0, corpus.engine, kGeneration,
                    std::chrono::milliseconds(40));
  ShardServer fast(0, corpus.engine, kGeneration);

  ThreadPoolOptions popts;
  popts.num_threads = 2;
  ThreadPool pool(popts);
  ReplicaSetOptions ropts;
  ropts.hedge_pool = &pool;
  ropts.hedge_delay_floor = std::chrono::milliseconds(5);
  ropts.hedge_rate_cap = 0.0;
  ReplicaSet set(0, {&slow, &fast}, ropts);

  shard::ShardRequest request;
  request.query = fx.queries[1];
  request.expected_generation = kGeneration;
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const shard::ShardResponse response = set.Evaluate(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.truncated);

  const ReplicaSetStats stats = set.stats();
  EXPECT_EQ(stats.hedges, 0u);
  EXPECT_GE(stats.hedge_suppressed, 1u);
  EXPECT_EQ(stats.attempts, 1u);  // the primary answered; no hedge fired
}

/// The full stack under concurrency: a Coordinator fanning out to
/// per-shard ReplicaSets (each two healthy replicas behind a shared hedge
/// pool), hammered from several threads. Answers must stay exact — and
/// TSan must stay quiet about the breakers, counters and hedge state the
/// legs share.
TEST_F(ReplicaSimTest, CoordinatorOverReplicaSetsServesExactlyUnderThreads) {
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({4u, Semantics::kNodeType});

  ThreadPoolOptions popts;
  popts.num_threads = 8;
  ThreadPool pool(popts);

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    servers.push_back(
        std::make_unique<ShardServer>(s, corpus.engine, kGeneration));
    servers.push_back(
        std::make_unique<ShardServer>(s, corpus.engine, kGeneration));
    ReplicaSetOptions ropts;
    ropts.hedge_pool = &pool;
    sets.push_back(std::make_unique<ReplicaSet>(
        s,
        std::vector<shard::ShardBackend*>{
            servers[2 * s].get(), servers[2 * s + 1].get()},
        ropts));
    backends.push_back(sets.back().get());
  }
  Coordinator coordinator(backends, corpus.stats,
                          SimOptions(Semantics::kNodeType),
                          SimCoordinatorOptions());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Query& query = fx.queries[(t + q) % fx.queries.size()];
        const CoordinatorResult result =
            coordinator.Suggest(query, kGeneration);
        if (!result.status.ok() || result.truncated) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Spot-check exactness single-threadedly against the oracle.
  const CoordinatorResult result =
      coordinator.Suggest(fx.queries[1], kGeneration);
  ASSERT_TRUE(result.status.ok());
  ExpectSameSuggestions(
      result.suggestions,
      fx.oracles.at(Semantics::kNodeType)->Suggest(fx.queries[1]), 1e-9,
      "coordinator-over-replica-sets vs oracle");
}

}  // namespace
}  // namespace xclean::shardtest
