/// The scatter-gather proof harness: hundreds of seeded fault schedules
/// (slow, crashed, shed, reduced, stale, mid-query-swapped and
/// deadline-starved shards in every combination the scheduler draws)
/// executed deterministically against real ShardServers, with the merged
/// answer checked against the graceful-degradation invariants:
///
///   (a) an all-healthy schedule reproduces the single-index oracle;
///   (b) generation purity — stale partials contribute nothing (removing
///       them changes no byte of the answer), so no ranking ever mixes two
///       corpus generations;
///   (c) `truncated` is set iff some shard's contribution is missing or
///       partial, and the per-kind counters account for every shard;
///   (d) degraded answers only ever *underestimate*: candidates are a
///       subset of the full candidate set, entity counts never exceed the
///       full merge's, and (node-type semantics, whose normalizer is
///       global) scores never exceed the full score;
///   (e) deadlines are honoured cooperatively — a deadline-starved shard
///       reports truncated rather than a late full answer.
///
/// Every assertion is wrapped in the failing schedule's description plus
/// the XCLEAN_SHARD_SEED needed to replay it; the whole run is a pure
/// function of that seed.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/xclean.h"
#include "index/xml_index.h"
#include "shard/coordinator.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_sim/shard_sim.h"
#include "tests/shard_testutil.h"

namespace xclean::shardtest {
namespace {

using shard::BuildShardedCorpus;
using shard::Coordinator;
using shard::CoordinatorOptions;
using shard::CoordinatorResult;
using shard::ShardedCorpus;
using shard::ShardedCorpusOptions;
using shard::ShardOutcome;
using shard::ShardOutcomeKind;
using shard::ShardServer;

constexpr uint64_t kGeneration = 11;
constexpr size_t kNumCorpora = 3;
constexpr size_t kNumSchedules = 240;  // CI bar: >= 200 seeded schedules

/// Everything derivable from one corpus seed, built once and reused by all
/// schedules: the unsharded oracles (one per semantics), the dirty query
/// set, and the sharded builds for every shard count a schedule can draw.
struct CorpusFixture {
  std::unique_ptr<XmlIndex> oracle_index;
  std::map<Semantics, std::unique_ptr<XClean>> oracles;
  std::vector<Query> queries;
  /// Keyed by (num_shards, semantics); corpora are small so 6 x 3 sharded
  /// builds per corpus stay cheap.
  std::map<std::pair<size_t, Semantics>, ShardedCorpus> sharded;
};

XCleanOptions SimOptions(Semantics semantics) {
  XCleanOptions options;
  options.gamma = 0;  // the exactness contract is the unbounded config's
  options.semantics = semantics;
  options.top_k = 50;
  return options;
}

CoordinatorOptions SimCoordinatorOptions() {
  CoordinatorOptions copts;
  copts.top_k = 50;
  return copts;
}

class ShardSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixtures_ = new std::vector<CorpusFixture>(kNumCorpora);
    const uint64_t base = ShardBaseSeed();
    static constexpr Semantics kAll[] = {
        Semantics::kNodeType, Semantics::kSlca, Semantics::kElca};
    for (size_t c = 0; c < kNumCorpora; ++c) {
      CorpusFixture& fx = (*fixtures_)[c];
      const uint64_t seed = base + 5000 + c;
      fx.oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
      fx.queries = DirtyQueries(*fx.oracle_index, seed);
      for (Semantics semantics : kAll) {
        fx.oracles[semantics] =
            std::make_unique<XClean>(*fx.oracle_index, SimOptions(semantics));
        for (size_t num_shards = 2; num_shards <= 7; ++num_shards) {
          ShardedCorpusOptions sopts;
          sopts.num_shards = num_shards;
          sopts.xclean = SimOptions(semantics);
          Result<ShardedCorpus> corpus = BuildShardedCorpus(
              RandomCorpusTree(seed), sopts, kGeneration);
          ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
          fx.sharded.emplace(std::make_pair(num_shards, semantics),
                             std::move(corpus.value()));
        }
      }
    }
  }

  static void TearDownTestSuite() {
    delete fixtures_;
    fixtures_ = nullptr;
  }

  static std::vector<CorpusFixture>* fixtures_;
};

std::vector<CorpusFixture>* ShardSimTest::fixtures_ = nullptr;

/// All-healthy outcomes for the same (corpus, shards, query) — the "full"
/// reference every degraded schedule is compared against.
std::vector<ShardOutcome> FullOutcomes(const ShardedCorpus& corpus,
                                       const Query& query) {
  std::vector<ShardOutcome> outcomes;
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    ShardServer server(s, corpus.engine, kGeneration);
    shard::ShardRequest request;
    request.query = query;
    outcomes.push_back({ShardOutcomeKind::kOk, server.Evaluate(request)});
  }
  return outcomes;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& w : words) {
    out += w;
    out += ' ';
  }
  return out;
}

/// Replays Merge's per-shard classification from the raw outcomes — the
/// counters differential of invariant (c).
struct ExpectedCounters {
  uint32_t ok = 0, truncated = 0, stale = 0, failed = 0;
};

ExpectedCounters ClassifyOutcomes(const std::vector<ShardOutcome>& outcomes) {
  ExpectedCounters want;
  for (const ShardOutcome& outcome : outcomes) {
    if (outcome.kind != ShardOutcomeKind::kOk ||
        !outcome.response.status.ok()) {
      ++want.failed;
    } else if (outcome.response.generation != kGeneration) {
      ++want.stale;
    } else if (outcome.response.truncated) {
      ++want.truncated;
    } else {
      ++want.ok;
    }
  }
  return want;
}

TEST_F(ShardSimTest, SeededFaultSchedulesUpholdInvariants) {
  const uint64_t base = ShardBaseSeed();
  const CoordinatorOptions copts = SimCoordinatorOptions();
  size_t all_healthy = 0, degraded = 0, unavailable = 0;

  for (uint64_t round = 0; round < kNumSchedules; ++round) {
    const SimSchedule schedule =
        MakeSchedule(base + round, kNumCorpora, /*num_queries=*/24);
    CorpusFixture& fx = (*fixtures_)[schedule.corpus];
    ASSERT_LT(schedule.query_index, fx.queries.size());
    const Query& query = fx.queries[schedule.query_index];
    const ShardedCorpus& corpus =
        fx.sharded.at({schedule.num_shards, schedule.semantics});
    const XCleanOptions options = SimOptions(schedule.semantics);
    SCOPED_TRACE(FormatSchedule(schedule) + " — replay with XCLEAN_SHARD_SEED=" +
                 std::to_string(base));

    const std::vector<ShardOutcome> outcomes =
        ExecuteSchedule(schedule, corpus, query, kGeneration);
    ASSERT_EQ(outcomes.size(), schedule.num_shards);
    const CoordinatorResult result = Coordinator::Merge(
        *corpus.stats, options, copts, kGeneration, outcomes);

    // (c) counters account for every shard, exactly as classified.
    const ExpectedCounters want = ClassifyOutcomes(outcomes);
    EXPECT_EQ(result.shards_ok, want.ok);
    EXPECT_EQ(result.shards_truncated, want.truncated);
    EXPECT_EQ(result.shards_stale, want.stale);
    EXPECT_EQ(result.shards_failed, want.failed);
    EXPECT_EQ(result.shards_ok + result.shards_truncated +
                  result.shards_stale + result.shards_failed,
              schedule.num_shards);

    if (result.shards_ok + result.shards_truncated <
        copts.min_healthy_shards) {
      // Too few contributors: the coordinator must refuse, not serve an
      // answer computed from nothing.
      EXPECT_FALSE(result.status.ok());
      EXPECT_TRUE(result.truncated);
      ++unavailable;
      continue;
    }
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();

    // (c) truncated iff any shard's contribution is missing or partial.
    EXPECT_EQ(result.truncated, result.shards_ok != schedule.num_shards);

    // (e) a shard whose deadline had already expired must refuse to start
    // (expired-on-arrival admission check) and flag the refusal, instead
    // of running to completion inside the cancel token's clock-check
    // stride and posing as a full answer — the exact bug an earlier
    // version of ShardServer had, caught by this harness.
    for (uint32_t s = 0; s < schedule.num_shards; ++s) {
      if (schedule.faults[s] != FaultKind::kTightDeadline) continue;
      const ShardOutcome& outcome = outcomes[s];
      if (outcome.kind == ShardOutcomeKind::kOk &&
          outcome.response.status.ok() &&
          outcome.response.generation == kGeneration) {
        EXPECT_TRUE(outcome.response.truncated) << "shard " << s;
        EXPECT_TRUE(outcome.response.partials.empty()) << "shard " << s;
        EXPECT_EQ(outcome.response.cancel_cause, CancelCause::kDeadline)
            << "shard " << s;
      }
    }

    if (schedule.AllHealthy()) {
      // (a) healthy scatter-gather == the single-index oracle.
      EXPECT_FALSE(result.truncated);
      ExpectSameSuggestions(
          result.suggestions,
          fx.oracles.at(schedule.semantics)->Suggest(query), 1e-9,
          "all-healthy schedule vs oracle");
      ++all_healthy;
      continue;
    }
    ++degraded;

    // (b) generation purity: strip every stale response and re-merge; the
    // answer must not change by a single byte — stale partials were
    // dropped wholesale, never blended.
    std::vector<ShardOutcome> stripped = outcomes;
    for (ShardOutcome& outcome : stripped) {
      if (outcome.kind == ShardOutcomeKind::kOk &&
          outcome.response.status.ok() &&
          outcome.response.generation != kGeneration) {
        outcome = ShardOutcome{ShardOutcomeKind::kError, {}};
      }
    }
    const CoordinatorResult purged = Coordinator::Merge(
        *corpus.stats, options, copts, kGeneration, stripped);
    ASSERT_EQ(purged.suggestions.size(), result.suggestions.size());
    for (size_t i = 0; i < result.suggestions.size(); ++i) {
      EXPECT_EQ(result.suggestions[i].words, purged.suggestions[i].words);
      EXPECT_EQ(result.suggestions[i].score, purged.suggestions[i].score);
      EXPECT_EQ(result.suggestions[i].entity_count,
                purged.suggestions[i].entity_count);
    }

    // (d) degradation only underestimates, relative to the full merge —
    // materialized uncapped so it enumerates the complete candidate set.
    CoordinatorOptions uncapped = copts;
    uncapped.top_k = static_cast<size_t>(-1);
    const CoordinatorResult full = Coordinator::Merge(
        *corpus.stats, options, uncapped, kGeneration,
        FullOutcomes(corpus, query));
    ASSERT_TRUE(full.status.ok());
    std::map<std::string, const Suggestion*> full_by_words;
    for (const Suggestion& s : full.suggestions) {
      full_by_words[JoinWords(s.words)] = &s;
    }
    for (const Suggestion& got : result.suggestions) {
      // Every candidate some shard produced under faults exists in the
      // all-healthy candidate set — a degraded candidate missing from it
      // would be fabricated mass.
      auto it = full_by_words.find(JoinWords(got.words));
      ASSERT_NE(it, full_by_words.end())
          << "degraded answer invented candidate '" << JoinWords(got.words)
          << "'";
      EXPECT_LE(got.entity_count, it->second->entity_count);
      if (schedule.semantics == Semantics::kNodeType) {
        // Node-type normalizer is global, so dropping a shard's mass can
        // only shrink the score. (SLCA/ELCA renormalize by the *merged*
        // entity count, so a partial average may legitimately rise.)
        EXPECT_LE(got.score, it->second->score * (1.0 + 1e-9));
      }
    }
  }

  // The scheduler must actually exercise all three regimes; a drift in its
  // distribution would quietly hollow the suite out.
  EXPECT_GE(all_healthy, 10u);
  EXPECT_GE(degraded, 100u);
  EXPECT_GE(all_healthy + degraded + unavailable, kNumSchedules);
}

/// Every fault kind must occur in the pinned schedule set — otherwise a
/// rebalanced scheduler could silently stop covering, say, mid-query swaps.
TEST_F(ShardSimTest, ScheduleGeneratorCoversAllFaultKinds) {
  const uint64_t base = ShardBaseSeed();
  std::map<FaultKind, size_t> seen;
  for (uint64_t round = 0; round < kNumSchedules; ++round) {
    for (FaultKind f :
         MakeSchedule(base + round, kNumCorpora, 24).faults) {
      ++seen[f];
    }
  }
  for (uint8_t k = 0; k < static_cast<uint8_t>(FaultKind::kNumFaultKinds);
       ++k) {
    EXPECT_GT(seen[static_cast<FaultKind>(k)], 0u)
        << FaultName(static_cast<FaultKind>(k));
  }
}

/// A mid-query snapshot swap, injected into the anchor loop of one real
/// evaluation, must surface as a stale (droppable) response — never as a
/// clean answer at either generation. Direct unit of the torn-evaluation
/// hazard the generation re-read closes.
TEST_F(ShardSimTest, MidQuerySwapIsNeverMergedAsClean) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with -DXCLEAN_FAULT_INJECTION=OFF";
  }
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({4u, Semantics::kNodeType});
  // The swap callback fires from the anchor loop, so it lands on whichever
  // shard actually holds the query's occurrences — probe until it does
  // (a clean query guarantees some shard has anchors).
  shard::ShardResponse swapped;
  uint32_t swapped_shard = UINT32_MAX;
  for (uint32_t s = 0; s < corpus.num_shards() && swapped_shard == UINT32_MAX;
       ++s) {
    ShardServer server(s, corpus.engine, kGeneration);
    fault::ArmCallback(
        "delta.anchor",
        [&server] { server.PublishGeneration(kGeneration + 1); },
        /*times=*/1);
    shard::ShardRequest request;
    request.query = fx.queries[0];
    shard::ShardResponse response = server.Evaluate(request);
    fault::Disarm("delta.anchor");
    if (response.generation == kGeneration + 1) {
      EXPECT_EQ(server.stats().stale_risk, 1u);
      swapped = std::move(response);
      swapped_shard = s;
    }
  }
  ASSERT_NE(swapped_shard, UINT32_MAX)
      << "no shard hit the anchor loop for the clean query";
  ASSERT_TRUE(swapped.status.ok());
  EXPECT_TRUE(swapped.truncated);
  // The coordinator, expecting the old generation, must file it as stale.
  std::vector<ShardOutcome> outcomes(corpus.num_shards());
  outcomes[swapped_shard] = {ShardOutcomeKind::kOk, std::move(swapped)};
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    if (s == swapped_shard) continue;
    ShardServer healthy(s, corpus.engine, kGeneration);
    shard::ShardRequest r;
    r.query = fx.queries[0];
    outcomes[s] = {ShardOutcomeKind::kOk, healthy.Evaluate(r)};
  }
  const CoordinatorResult result =
      Coordinator::Merge(*corpus.stats, SimOptions(Semantics::kNodeType),
                         SimCoordinatorOptions(), kGeneration, outcomes);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.shards_stale, 1u);
  EXPECT_TRUE(result.truncated);
}

/// The real threaded fan-out against a genuinely slow shard: the
/// coordinator must serve a partial answer within its own deadline instead
/// of inheriting the slow shard's latency.
TEST_F(ShardSimTest, ThreadedFanoutHonoursDeadlineUnderSlowShard) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with -DXCLEAN_FAULT_INJECTION=OFF";
  }
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({4u, Semantics::kNodeType});

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<shard::ShardBackend*> backends;
  for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
    servers.push_back(
        std::make_unique<ShardServer>(s, corpus.engine, kGeneration));
    backends.push_back(servers.back().get());
  }
  CoordinatorOptions copts = SimCoordinatorOptions();
  copts.fanout_timeout = std::chrono::milliseconds(150);
  Coordinator coordinator(backends, corpus.stats,
                          SimOptions(Semantics::kNodeType), copts);

  fault::ArmDelay("shard.evaluate.2", std::chrono::milliseconds(2000),
                  /*times=*/1);
  const auto start = std::chrono::steady_clock::now();
  const CoordinatorResult result =
      coordinator.Suggest(fx.queries[0], kGeneration);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  fault::DisarmAll();

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.shards_failed, 1u);
  EXPECT_EQ(result.shards_ok, corpus.num_shards() - 1);
  EXPECT_FALSE(result.suggestions.empty());
  // Generous CI bound: well under the slow shard's 2 s, proving the
  // coordinator cut the leg loose rather than waiting it out.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(1500));
}

/// Crash isolation with a real process death: a forked child dies (hard
/// _exit, no unwinding) in the middle of evaluating one shard; the parent
/// — playing the coordinator watching a transport — files that leg as
/// kError and still serves from the surviving shards. The kill happens
/// mid-anchor-loop, the worst possible instant.
TEST_F(ShardSimTest, ForkKilledShardDegradesToPartialAnswer) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "built with -DXCLEAN_FAULT_INJECTION=OFF";
  }
  CorpusFixture& fx = (*fixtures_)[0];
  const ShardedCorpus& corpus = fx.sharded.at({4u, Semantics::kNodeType});
  const Query& query = fx.queries[0];  // clean query: anchors guaranteed

  // The kill fires from the anchor loop, so the child sweeps the shards in
  // order and dies inside the first one holding the query's occurrences —
  // exit code 42 proves death mid-evaluation, not a clean run.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fault::ArmCallback("delta.anchor", [] { _exit(42); }, /*times=*/1);
    for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
      ShardServer server(s, corpus.engine, kGeneration);
      shard::ShardRequest request;
      request.query = query;
      (void)server.Evaluate(request);
    }
    _exit(0);  // not reached: a clean query has anchors in some shard
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 42) << "child survived the injected kill";

  // The parent, as coordinator, watched shard 1's transport die and files
  // the leg as kError; the other shards answer normally. A query whose
  // matches all live on the dead shard legitimately merges to nothing —
  // degradation means partial coverage, not conjuring mass from a dead
  // shard — so probe the query set for one the survivors can still answer.
  bool partial_answer_found = false;
  for (const Query& probe : fx.queries) {
    std::vector<ShardOutcome> outcomes(corpus.num_shards());
    for (uint32_t s = 0; s < corpus.num_shards(); ++s) {
      if (s == 1) {
        outcomes[s].kind = ShardOutcomeKind::kError;
        outcomes[s].response.status =
            Status::Unavailable("shard process died");
        continue;
      }
      ShardServer server(s, corpus.engine, kGeneration);
      shard::ShardRequest request;
      request.query = probe;
      outcomes[s] = {ShardOutcomeKind::kOk, server.Evaluate(request)};
    }
    const CoordinatorResult result =
        Coordinator::Merge(*corpus.stats, SimOptions(Semantics::kNodeType),
                           SimCoordinatorOptions(), kGeneration, outcomes);
    ASSERT_TRUE(result.status.ok());
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.shards_failed, 1u);
    if (!result.suggestions.empty()) {
      partial_answer_found = true;
      break;
    }
  }
  EXPECT_TRUE(partial_answer_found)
      << "no query in the set was answerable by the surviving shards";
}

}  // namespace
}  // namespace xclean::shardtest
