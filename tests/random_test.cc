#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace xclean {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.Uniform(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // fair-ish: expected 1000 each
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Rng rng(23);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 50000; ++i) ++hits[zipf.Sample(rng)];
  // Popularity should decrease (roughly) with rank.
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[10], hits[99]);
  // Rank 0 of an s=1 Zipf over 100 items gets ~19% of the mass.
  EXPECT_GT(hits[0], 50000 / 10);
}

TEST(ZipfTest, AllRanksReachable) {
  Rng rng(29);
  ZipfDistribution zipf(5, 0.5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(rng)];
  for (int h : hits) EXPECT_GT(h, 0);
}

}  // namespace
}  // namespace xclean
