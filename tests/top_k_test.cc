#include "common/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace xclean {
namespace {

TEST(TopKTest, KeepsLargestK) {
  TopK<int> top(3);
  for (int v : {5, 1, 9, 3, 7, 2}) top.Push(v);
  EXPECT_EQ(top.Take(), (std::vector<int>{9, 7, 5}));
}

TEST(TopKTest, FewerThanK) {
  TopK<int> top(10);
  top.Push(2);
  top.Push(1);
  EXPECT_EQ(top.Take(), (std::vector<int>{2, 1}));
}

TEST(TopKTest, WorstReportsKthBest) {
  TopK<int> top(2);
  top.Push(5);
  top.Push(9);
  ASSERT_TRUE(top.full());
  EXPECT_EQ(top.Worst(), 5);
  top.Push(7);
  EXPECT_EQ(top.Worst(), 7);
}

TEST(TopKTest, CustomComparatorSmallestK) {
  auto greater = [](int a, int b) { return a > b; };
  TopK<int, decltype(greater)> top(2, greater);
  for (int v : {5, 1, 9, 3}) top.Push(v);
  EXPECT_EQ(top.Take(), (std::vector<int>{1, 3}));
}

// Property: TopK(k) over any input equals sort-descending + truncate.
TEST(TopKTest, MatchesSortTruncateProperty) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    size_t k = 1 + rng.Uniform(10);
    size_t n = rng.Uniform(100);
    std::vector<int> values;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<int>(rng.Uniform(50)));
    }
    TopK<int> top(k);
    for (int v : values) top.Push(v);
    std::vector<int> expected = values;
    std::sort(expected.rbegin(), expected.rend());
    if (expected.size() > k) expected.resize(k);
    EXPECT_EQ(top.Take(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace xclean
