#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/naive.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "xml/parser.h"

namespace xclean {
namespace {

/// Random small corpora with a deliberately confusable vocabulary (many
/// words within small edit distances of each other).
std::unique_ptr<XmlIndex> RandomCorpus(uint64_t seed) {
  static const char* kWords[] = {"tree",  "trees", "trie",  "tried", "three",
                                 "icde",  "icdt",  "index", "night", "light",
                                 "sight", "graph", "grape", "query", "quern"};
  Rng rng(seed);
  XmlTreeBuilder b;
  EXPECT_TRUE(b.BeginElement("root").ok());
  uint64_t sections = 2 + rng.Uniform(4);
  for (uint64_t s = 0; s < sections; ++s) {
    EXPECT_TRUE(b.BeginElement(rng.Bernoulli(0.5) ? "sec" : "chap").ok());
    uint64_t items = 1 + rng.Uniform(5);
    for (uint64_t i = 0; i < items; ++i) {
      EXPECT_TRUE(b.BeginElement("item").ok());
      uint64_t words = 1 + rng.Uniform(6);
      std::string text;
      for (uint64_t w = 0; w < words; ++w) {
        if (!text.empty()) text += " ";
        text += kWords[rng.Uniform(std::size(kWords))];
      }
      EXPECT_TRUE(b.AddText(text).ok());
      if (rng.Bernoulli(0.3)) {
        EXPECT_TRUE(
            b.AddLeaf("note", kWords[rng.Uniform(std::size(kWords))]).ok());
      }
      EXPECT_TRUE(b.EndElement().ok());
    }
    EXPECT_TRUE(b.EndElement().ok());
  }
  EXPECT_TRUE(b.EndElement().ok());
  Result<XmlTree> tree = std::move(b).Finish();
  EXPECT_TRUE(tree.ok());
  return XmlIndex::Build(std::move(tree).value());
}

void ExpectSameSuggestions(const std::vector<Suggestion>& a,
                           const std::vector<Suggestion>& b,
                           const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].words, b[i].words) << context << " rank " << i;
    EXPECT_NEAR(a[i].score, b[i].score,
                1e-12 * (1.0 + std::abs(a[i].score)))
        << context << " rank " << i;
    EXPECT_EQ(a[i].entity_count, b[i].entity_count) << context << " rank "
                                                    << i;
    EXPECT_EQ(a[i].result_type, b[i].result_type) << context << " rank " << i;
  }
}

struct EquivParam {
  Semantics semantics;
  uint32_t min_depth;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

/// Invariant from Sec. V: the single-pass XClean algorithm with unbounded
/// accumulators computes exactly the same scores as the naive
/// candidate-at-a-time evaluation.
TEST_P(EquivalenceTest, XCleanMatchesNaiveOnRandomCorpora) {
  const EquivParam param = GetParam();
  static const char* kQueries[] = {"tree icde", "tres",       "grap quer",
                                   "night",     "trie icdt",  "three light",
                                   "inde",      "tree query", "sigt grape"};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto index = RandomCorpus(seed);
    XCleanOptions options;
    options.max_ed = 2;
    options.gamma = 0;
    options.semantics = param.semantics;
    options.min_depth = param.min_depth;
    options.top_k = 50;
    XClean fast(*index, options);
    NaiveCleaner naive(*index, options);
    for (const char* q : kQueries) {
      Query query = ParseQuery(q, index->tokenizer());
      ExpectSameSuggestions(
          fast.Suggest(query), naive.Suggest(query),
          std::string(q) + " seed " + std::to_string(seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SemanticsAndDepths, EquivalenceTest,
    ::testing::Values(EquivParam{Semantics::kNodeType, 2},
                      EquivParam{Semantics::kNodeType, 3},
                      EquivParam{Semantics::kSlca, 2},
                      EquivParam{Semantics::kSlca, 3},
                      EquivParam{Semantics::kElca, 2},
                      EquivParam{Semantics::kElca, 3}));

/// The same equivalence on a slice of the realistic DBLP-like generator
/// output (deeper vocabulary, attributes-as-nodes, citation blocks).
TEST(EquivalenceDblpTest, MatchesNaiveOnGeneratedData) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  gen.seed = 5;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  XCleanOptions options;
  options.max_ed = 2;
  options.gamma = 0;
  options.top_k = 25;
  XClean fast(*index, options);
  NaiveCleaner naive(*index, options);
  for (const char* q :
       {"algoritm", "tree indexing", "wilson grap", "parralel database",
        "query optimizaton"}) {
    Query query = ParseQuery(q, index->tokenizer());
    ExpectSameSuggestions(fast.Suggest(query), naive.Suggest(query), q);
  }
}

/// gamma large enough to hold every candidate must also be exact.
TEST(EquivalenceGammaTest, LargeGammaIsExact) {
  auto index = RandomCorpus(3);
  XCleanOptions exact;
  exact.max_ed = 2;
  exact.gamma = 0;
  exact.top_k = 50;
  XCleanOptions bounded = exact;
  bounded.gamma = 100000;
  XClean a(*index, exact);
  XClean b(*index, bounded);
  for (const char* q : {"tree icde", "grap quer", "three light"}) {
    Query query = ParseQuery(q, index->tokenizer());
    ExpectSameSuggestions(a.Suggest(query), b.Suggest(query), q);
  }
}

}  // namespace
}  // namespace xclean
