/// Differential oracle for scatter-gather serving: a healthy coordinator
/// over N shards must rank exactly like one XClean over the unsharded
/// corpus, for every semantics and every shard count — the acceptance bar
/// of the sharding work. Scores are compared at 1e-9 relative tolerance
/// (shard-major float addition order differs from the entity fold by
/// ulps); words, entity counts and result types must match exactly.
/// gamma is pinned to 0: bounded-accumulator eviction decides on local
/// partial scores, so the exactness contract is the unbounded
/// configuration's (shard/coordinator.h).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/query_scratch.h"
#include "core/xclean.h"
#include "index/xml_index.h"
#include "shard/coordinator.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"
#include "tests/shard_testutil.h"

namespace xclean::shard {
namespace {

using shardtest::DirtyQueries;
using shardtest::ExpectSameSuggestions;
using shardtest::RandomCorpusTree;
using shardtest::SemanticsName;
using shardtest::ShardBaseSeed;

constexpr uint64_t kGeneration = 5;

XCleanOptions ExactOptions(Semantics semantics) {
  XCleanOptions options;
  options.gamma = 0;
  options.semantics = semantics;
  return options;
}

/// All-healthy outcome vector: every shard evaluated synchronously with no
/// deadline and no pressure, as the fan-out would deliver on a quiet fleet.
std::vector<ShardOutcome> HealthyOutcomes(std::vector<ShardServer*>& servers,
                                          const Query& query) {
  std::vector<ShardOutcome> outcomes;
  for (ShardServer* server : servers) {
    ShardRequest request;
    request.query = query;
    outcomes.push_back({ShardOutcomeKind::kOk, server->Evaluate(request)});
  }
  return outcomes;
}

class ShardDifferentialTest : public ::testing::TestWithParam<Semantics> {};

/// The headline claim: Merge over healthy per-shard partials == unsharded
/// XClean, across 3 corpora x 4 shard counts x ~24 dirty queries per
/// semantics (>> 100 query-cases per semantics instantiation).
TEST_P(ShardDifferentialTest, HealthyCoordinatorEqualsUnshardedOracle) {
  const Semantics semantics = GetParam();
  const uint64_t base = ShardBaseSeed();
  const XCleanOptions options = ExactOptions(semantics);
  CoordinatorOptions copts;
  copts.top_k = options.top_k;

  for (uint64_t round = 0; round < 3; ++round) {
    const uint64_t seed = base + 500 + round;
    // Same seed, two independent builds: one indexed whole (the oracle),
    // one partitioned (the system under test).
    auto oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
    XClean oracle(*oracle_index, options);
    const std::vector<Query> queries = DirtyQueries(*oracle_index, seed);

    for (size_t num_shards : {1u, 2u, 4u, 7u}) {
      ShardedCorpusOptions sopts;
      sopts.num_shards = num_shards;
      sopts.xclean = options;
      Result<ShardedCorpus> corpus =
          BuildShardedCorpus(RandomCorpusTree(seed), sopts, kGeneration);
      ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

      std::vector<std::unique_ptr<ShardServer>> servers;
      std::vector<ShardServer*> backends;
      for (uint32_t s = 0; s < num_shards; ++s) {
        servers.push_back(std::make_unique<ShardServer>(s, corpus->engine,
                                                        kGeneration));
        backends.push_back(servers.back().get());
      }

      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const std::string context =
            std::string(SemanticsName(semantics)) + " seed " +
            std::to_string(seed) + " shards " + std::to_string(num_shards) +
            " query " + std::to_string(qi);
        CoordinatorResult merged = Coordinator::Merge(
            *corpus->stats, options, copts, kGeneration,
            HealthyOutcomes(backends, queries[qi]));
        ASSERT_TRUE(merged.status.ok()) << context;
        EXPECT_FALSE(merged.truncated) << context;
        EXPECT_EQ(merged.generation, kGeneration) << context;
        EXPECT_EQ(merged.shards_ok, num_shards) << context;
        EXPECT_EQ(merged.shards_failed + merged.shards_stale +
                      merged.shards_truncated,
                  0u)
            << context;
        ExpectSameSuggestions(merged.suggestions,
                              oracle.Suggest(queries[qi]), 1e-9, context);
      }
    }
  }
}

/// The threaded fan-out path (real ThreadPool, deadlines armed) must agree
/// with the same oracle — Suggest() is Merge() plus concurrency, and on a
/// healthy fleet the concurrency must be invisible.
TEST_P(ShardDifferentialTest, ThreadedFanoutMatchesOracle) {
  const Semantics semantics = GetParam();
  const uint64_t seed = ShardBaseSeed() + 900;
  const XCleanOptions options = ExactOptions(semantics);

  auto oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
  XClean oracle(*oracle_index, options);

  ShardedCorpusOptions sopts;
  sopts.num_shards = 4;
  sopts.xclean = options;
  Result<ShardedCorpus> corpus =
      BuildShardedCorpus(RandomCorpusTree(seed), sopts, kGeneration);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardBackend*> backends;
  for (uint32_t s = 0; s < sopts.num_shards; ++s) {
    servers.push_back(
        std::make_unique<ShardServer>(s, corpus->engine, kGeneration));
    backends.push_back(servers.back().get());
  }
  CoordinatorOptions copts;
  copts.top_k = options.top_k;
  copts.fanout_timeout = std::chrono::milliseconds(5000);  // CI headroom
  Coordinator coordinator(backends, corpus->stats, options, copts);

  const std::vector<Query> queries = DirtyQueries(*oracle_index, seed);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string context = std::string(SemanticsName(semantics)) +
                                " threaded query " + std::to_string(qi);
    CoordinatorResult got = coordinator.Suggest(queries[qi], kGeneration);
    ASSERT_TRUE(got.status.ok()) << context;
    EXPECT_FALSE(got.truncated) << context;
    ExpectSameSuggestions(got.suggestions, oracle.Suggest(queries[qi]), 1e-9,
                          context);
  }
}

/// Stronger sequential claim backing the tolerance choice above: the
/// layered engine the shards share, run over ALL its layers in one
/// sequential pass, reproduces the unsharded scores essentially exactly —
/// the 1e-9 budget is spent on merge *order*, not on the shard split.
TEST_P(ShardDifferentialTest, SequentialLayeredPassMatchesOracleTightly) {
  const Semantics semantics = GetParam();
  const uint64_t seed = ShardBaseSeed() + 1300;
  const XCleanOptions options = ExactOptions(semantics);

  auto oracle_index = XmlIndex::Build(RandomCorpusTree(seed));
  XClean oracle(*oracle_index, options);

  ShardedCorpusOptions sopts;
  sopts.num_shards = 4;
  sopts.xclean = options;
  Result<ShardedCorpus> corpus =
      BuildShardedCorpus(RandomCorpusTree(seed), sopts, kGeneration);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  QueryScratch scratch;
  for (const Query& query : DirtyQueries(*oracle_index, seed)) {
    std::vector<Suggestion> layered;
    XCleanRunStats stats;
    corpus->engine->SuggestWithScratch(query, scratch, &layered, &stats);
    ExpectSameSuggestions(layered, oracle.Suggest(query), 1e-12,
                          std::string(SemanticsName(semantics)) +
                              " sequential layered pass");
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, ShardDifferentialTest,
                         ::testing::Values(Semantics::kNodeType,
                                           Semantics::kSlca,
                                           Semantics::kElca),
                         [](const auto& info) {
                           return shardtest::SemanticsName(info.param);
                         });

}  // namespace
}  // namespace xclean::shard
