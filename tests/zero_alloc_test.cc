#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/naive.h"
#include "core/query_scratch.h"
#include "core/suggester.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "alloc_probe.h"

namespace xclean {
namespace {

/// The zero-steady-state-allocation contract of QueryScratch (node-type
/// semantics): after a warm-up pass has grown every arena to its working
/// size, further SuggestWithScratch calls perform no heap allocation at
/// all — not in the merged lists, the occurrence buffers, the accumulator
/// table, the memo tables, or the output emission.

std::unique_ptr<XmlIndex> Corpus() {
  DblpGenOptions gen;
  gen.num_publications = 400;
  gen.seed = 11;
  return XmlIndex::Build(GenerateDblp(gen));
}

std::vector<Query> TestQueries(const XmlIndex& index) {
  std::vector<Query> queries;
  for (const char* q : {"algoritm", "tree indexing", "wilson grap",
                        "parralel database", "query optimizaton"}) {
    queries.push_back(ParseQuery(q, index.tokenizer()));
  }
  return queries;
}

TEST(ZeroAllocTest, SteadyStateSuggestDoesNotAllocate) {
  auto index = Corpus();
  XCleanOptions options;
  options.semantics = Semantics::kNodeType;
  XClean algorithm(*index, options);
  std::vector<Query> queries = TestQueries(*index);

  QueryScratch scratch;
  // One reused output vector per query: steady state means each query's
  // result shape repeats, so its own buffers stop growing after warm-up.
  std::vector<std::vector<Suggestion>> outs(queries.size());

  // Warm-up: two passes (the first grows the arenas; the second proves the
  // growth converged before we start counting).
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      algorithm.SuggestWithScratch(queries[i], scratch, &outs[i], nullptr);
    }
  }

  testing::AllocProbe probe;
  for (int pass = 0; pass < 5; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      algorithm.SuggestWithScratch(queries[i], scratch, &outs[i], nullptr);
    }
  }
  EXPECT_EQ(probe.allocations(), 0u);

  // The runs above must still produce real output.
  size_t nonempty = 0;
  for (const auto& out : outs) nonempty += out.empty() ? 0 : 1;
  EXPECT_GT(nonempty, 0u);
}

/// Eviction churn must not allocate either: with a tiny gamma the
/// accumulator table constantly erases and re-creates entries, exercising
/// the CandidateMap free list and in-place tombstone flushes.
TEST(ZeroAllocTest, GammaEvictionChurnDoesNotAllocate) {
  auto index = Corpus();
  XCleanOptions options;
  options.semantics = Semantics::kNodeType;
  options.gamma = 1;
  XClean algorithm(*index, options);
  // A short misspelled keyword has many scoring variant candidates, so a
  // single accumulator slot guarantees eviction churn.
  Query query = ParseQuery("tre", index->tokenizer());

  QueryScratch scratch;
  std::vector<Suggestion> out;
  XCleanRunStats stats;
  for (int pass = 0; pass < 2; ++pass) {
    algorithm.SuggestWithScratch(query, scratch, &out, &stats);
  }
  ASSERT_GT(stats.accumulator_evictions, 0u)
      << "gamma=1 should force evictions, or the test is vacuous";

  testing::AllocProbe probe;
  for (int pass = 0; pass < 5; ++pass) {
    algorithm.SuggestWithScratch(query, scratch, &out, nullptr);
  }
  EXPECT_EQ(probe.allocations(), 0u);
}

/// A CancelToken on the hot path must not cost an allocation: budget
/// bookkeeping is a couple of integers on the stack, and a token whose
/// budget never trips leaves the steady-state zero-alloc contract intact.
TEST(ZeroAllocTest, SuggestWithBudgetAttachedDoesNotAllocate) {
  auto index = Corpus();
  XCleanOptions options;
  options.semantics = Semantics::kNodeType;
  XClean algorithm(*index, options);
  std::vector<Query> queries = TestQueries(*index);

  QueryScratch scratch;
  std::vector<std::vector<Suggestion>> outs(queries.size());
  QueryBudget budget;
  budget.max_postings = 1000000000;  // attached but never trips
  budget.max_candidates = 1000000000;

  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      CancelToken token(budget);
      algorithm.SuggestWithScratch(queries[i], scratch, &outs[i], nullptr,
                                   &token);
    }
  }

  testing::AllocProbe probe;
  for (int pass = 0; pass < 5; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      CancelToken token(budget);
      algorithm.SuggestWithScratch(queries[i], scratch, &outs[i], nullptr,
                                   &token);
    }
  }
  EXPECT_EQ(probe.allocations(), 0u);
}

/// Sanity-check the probe itself: a heap allocation in the probed region
/// must be observed (guards against the replacement operators silently not
/// linking in).
TEST(ZeroAllocTest, ProbeObservesAllocations) {
  testing::AllocProbe probe;
  std::vector<int>* v = new std::vector<int>(100);
  uint64_t seen = probe.allocations();
  delete v;
  EXPECT_GE(seen, 1u);
}

}  // namespace
}  // namespace xclean
