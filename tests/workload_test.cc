#include "data/workload.h"

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "text/edit_distance.h"

namespace xclean {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpGenOptions gen;
    gen.num_publications = 800;
    gen.seed = 3;
    index_ = XmlIndex::Build(GenerateDblp(gen)).release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }
  static const XmlIndex* index_;
};

const XmlIndex* WorkloadTest::index_ = nullptr;

WorkloadOptions SmallWorkload() {
  WorkloadOptions o;
  o.num_queries = 40;
  o.seed = 9;
  return o;
}

TEST_F(WorkloadTest, InitialQueriesAreAnswerableAndClean) {
  std::vector<Query> queries = SampleInitialQueries(*index_, SmallWorkload());
  ASSERT_EQ(queries.size(), 40u);
  for (const Query& q : queries) {
    EXPECT_GE(q.size(), 1u);
    EXPECT_LE(q.size(), 7u);
    for (const std::string& w : q.keywords) {
      EXPECT_TRUE(index_->vocabulary().Contains(w)) << w;
    }
  }
}

TEST_F(WorkloadTest, InitialQueryLengthsAverageNearPaper) {
  WorkloadOptions o = SmallWorkload();
  o.num_queries = 300;
  std::vector<Query> queries = SampleInitialQueries(*index_, o);
  double total = 0;
  for (const Query& q : queries) total += q.size();
  double avg = total / queries.size();
  EXPECT_GT(avg, 1.8);
  EXPECT_LT(avg, 3.3);
}

TEST_F(WorkloadTest, DeterministicInSeed) {
  auto a = SampleInitialQueries(*index_, SmallWorkload());
  auto b = SampleInitialQueries(*index_, SmallWorkload());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(WorkloadTest, RandPerturbationProperties) {
  WorkloadOptions o = SmallWorkload();
  std::vector<Query> initial = SampleInitialQueries(*index_, o);
  Rng rng(42);
  size_t perturbed_words = 0;
  for (const Query& clean : initial) {
    Query dirty = PerturbRand(clean, *index_, o, rng);
    ASSERT_EQ(dirty.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
      const std::string& cw = clean.keywords[i];
      const std::string& dw = dirty.keywords[i];
      if (cw.size() <= 4) {
        // Paper subtlety: short tokens are never perturbed.
        EXPECT_EQ(dw, cw);
        continue;
      }
      if (dw != cw) {
        ++perturbed_words;
        // Paper subtlety: dirty tokens leave the vocabulary.
        EXPECT_FALSE(index_->vocabulary().Contains(dw)) << dw;
        EXPECT_LE(EditDistance(cw, dw), o.rand_edits);
      }
    }
  }
  EXPECT_GT(perturbed_words, 20u);
}

TEST_F(WorkloadTest, RulePerturbationPrefersTableAndRules) {
  WorkloadOptions o = SmallWorkload();
  o.num_queries = 120;
  std::vector<Query> initial = SampleInitialQueries(*index_, o);
  Rng rng(43);
  size_t changed = 0;
  double distance_sum = 0;
  size_t distance_count = 0;
  for (const Query& clean : initial) {
    Query dirty = PerturbRule(clean, *index_, o, rng);
    ASSERT_EQ(dirty.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
      if (dirty.keywords[i] != clean.keywords[i]) {
        ++changed;
        uint32_t d = EditDistance(clean.keywords[i], dirty.keywords[i]);
        EXPECT_GE(d, 1u);
        distance_sum += d;
        ++distance_count;
      }
    }
  }
  EXPECT_GT(changed, 50u);
  // RULE errors skew beyond distance 1 (the paper's observation).
  EXPECT_GT(distance_sum / distance_count, 1.1);
}

TEST_F(WorkloadTest, MakeQuerySetShapes) {
  WorkloadOptions o = SmallWorkload();
  std::vector<Query> initial = SampleInitialQueries(*index_, o);
  QuerySet clean = MakeQuerySet("DBLP-CLEAN", *index_, initial,
                                Perturbation::kClean, o);
  EXPECT_EQ(clean.name, "DBLP-CLEAN");
  ASSERT_EQ(clean.queries.size(), initial.size());
  for (size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(clean.queries[i].dirty, clean.queries[i].truth);
    EXPECT_EQ(clean.queries[i].truth, initial[i]);
  }
  QuerySet rand =
      MakeQuerySet("DBLP-RAND", *index_, initial, Perturbation::kRand, o);
  size_t dirty_count = 0;
  for (const EvalQuery& eq : rand.queries) {
    if (eq.dirty != eq.truth) ++dirty_count;
  }
  EXPECT_GT(dirty_count, rand.queries.size() / 2);
}

TEST_F(WorkloadTest, SeProxyKnowsCleanQueriesAndRewrites) {
  WorkloadOptions o = SmallWorkload();
  std::vector<Query> initial = SampleInitialQueries(*index_, o);
  auto proxy = BuildSeProxy(*index_, initial, 77);
  // Clean query: passes through verbatim.
  auto s = proxy->Suggest(initial[0]);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words, initial[0].keywords);
  EXPECT_GT(proxy->log_vocabulary_size(), 100u);
}

}  // namespace
}  // namespace xclean
