/// The RPC transport's acceptance harness: framing and wire serialization
/// round-trip bit-exactly, every malformed input is rejected without
/// losing a healthy connection, and — the centerpiece — a seeded sweep of
/// byte-level fault schedules (truncate, bitflip, disconnect, stall,
/// duplicate, garbage, in both directions) through the FaultProxy, where
/// every mangled stream must end in either a bit-exact correct response
/// or a clean transport error inside the deadline. Never a
/// corrupt-accepted response, never a hung leg, never a leaked
/// connection.
///
/// A failing schedule prints its FaultScript and the seed; replay with
///   XCLEAN_RPC_SEED=<seed> ctest -R rpc_transport_test

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/durable_file.h"
#include "common/random.h"
#include "rpc/fault_proxy.h"
#include "rpc/frame.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_shard_server.h"
#include "rpc/socket.h"
#include "rpc/wire.h"
#include "shard/shard_server.h"
#include "tests/shard_testutil.h"

namespace xclean::rpc {
namespace {

using shard::ShardBackend;
using shard::ShardRequest;
using shard::ShardResponse;

/// Replay seed: XCLEAN_RPC_SEED wins, else the shared shard seed.
uint64_t RpcBaseSeed() {
  const char* env = std::getenv("XCLEAN_RPC_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return shardtest::ShardBaseSeed();
}

size_t ScheduleCount() {
  const char* env = std::getenv("XCLEAN_RPC_SCHEDULES");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 160;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// The canned answer the scripted backend serves: enough structure to make
/// a bit-exact comparison meaningful — multiple partials, doubles that do
/// not survive any lossy detour (denormals, non-representable decimals,
/// huge magnitudes), and every response field set off its default.
ShardResponse CannedResponse() {
  ShardResponse r;
  r.status = Status::Ok();
  r.shard_id = 3;
  r.generation = 41;
  r.tier = ServiceTier::kReduced;
  r.truncated = false;
  r.cancel_cause = CancelCause::kNone;
  const double weights[] = {0.1, 5e-324, 1e300, 0.0, 1.0 / 3.0, 2.5e-17};
  for (uint32_t i = 0; i < 6; ++i) {
    PartialCandidate p;
    for (uint32_t t = 0; t <= i % 3; ++t) p.tokens.push_back(100 * i + t);
    p.error_weight = weights[i];
    p.sum = weights[5 - i] * 7.0 + static_cast<double>(i);
    p.entity_count = 10 + i;
    p.lca_total = 20 + i;
    p.result_type = (i == 4) ? XmlTree::kInvalidPath : i;
    r.partials.push_back(p);
  }
  r.run_stats.subtrees_processed = 11;
  r.run_stats.occurrences_collected = 22;
  r.run_stats.candidates_enumerated = 33;
  r.run_stats.entities_scored = 44;
  r.run_stats.result_type_computations = 55;
  r.run_stats.accumulator_evictions = 66;
  r.run_stats.accumulators_final = 77;
  r.run_stats.truncated = true;
  r.run_stats.cancel_cause = CancelCause::kPostings;
  return r;
}

/// Field-by-field bit-exact comparison; doubles compared by bit pattern
/// (NaNs and signed zeros would slip through operator==).
void ExpectBitExact(const ShardResponse& got, const ShardResponse& want,
                    const std::string& context) {
  EXPECT_EQ(got.status.code(), want.status.code()) << context;
  EXPECT_EQ(got.shard_id, want.shard_id) << context;
  EXPECT_EQ(got.generation, want.generation) << context;
  EXPECT_EQ(got.tier, want.tier) << context;
  EXPECT_EQ(got.truncated, want.truncated) << context;
  EXPECT_EQ(got.cancel_cause, want.cancel_cause) << context;
  ASSERT_EQ(got.partials.size(), want.partials.size()) << context;
  for (size_t i = 0; i < want.partials.size(); ++i) {
    const PartialCandidate& g = got.partials[i];
    const PartialCandidate& w = want.partials[i];
    EXPECT_EQ(g.tokens, w.tokens) << context << " partial " << i;
    EXPECT_EQ(DoubleBits(g.error_weight), DoubleBits(w.error_weight))
        << context << " partial " << i;
    EXPECT_EQ(DoubleBits(g.sum), DoubleBits(w.sum))
        << context << " partial " << i;
    EXPECT_EQ(g.entity_count, w.entity_count) << context << " partial " << i;
    EXPECT_EQ(g.lca_total, w.lca_total) << context << " partial " << i;
    EXPECT_EQ(g.result_type, w.result_type) << context << " partial " << i;
  }
  EXPECT_EQ(got.run_stats.subtrees_processed,
            want.run_stats.subtrees_processed)
      << context;
  EXPECT_EQ(got.run_stats.occurrences_collected,
            want.run_stats.occurrences_collected)
      << context;
  EXPECT_EQ(got.run_stats.candidates_enumerated,
            want.run_stats.candidates_enumerated)
      << context;
  EXPECT_EQ(got.run_stats.entities_scored, want.run_stats.entities_scored)
      << context;
  EXPECT_EQ(got.run_stats.result_type_computations,
            want.run_stats.result_type_computations)
      << context;
  EXPECT_EQ(got.run_stats.accumulator_evictions,
            want.run_stats.accumulator_evictions)
      << context;
  EXPECT_EQ(got.run_stats.accumulators_final,
            want.run_stats.accumulators_final)
      << context;
  EXPECT_EQ(got.run_stats.truncated, want.run_stats.truncated) << context;
  EXPECT_EQ(got.run_stats.cancel_cause, want.run_stats.cancel_cause)
      << context;
}

/// A deterministic backend for transport tests: serves the canned response
/// after an optional delay, optionally spinning until the request's
/// external-cancel flag fires (to exercise the cancel frame end to end).
class ScriptedBackend final : public ShardBackend {
 public:
  ShardResponse canned = CannedResponse();
  /// Atomic because tests flip it back to zero while a server-side
  /// evaluation of an already-abandoned request may still be reading it.
  std::atomic<int64_t> eval_delay_ms{0};
  bool wait_for_cancel = false;

  ShardResponse Evaluate(const ShardRequest& request) override {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    started.store(true, std::memory_order_release);
    if (wait_for_cancel) {
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (std::chrono::steady_clock::now() < give_up) {
        if (request.external_cancel != nullptr &&
            request.external_cancel->load(std::memory_order_acquire)) {
          ShardResponse r = canned;
          r.truncated = true;
          r.cancel_cause = CancelCause::kExternal;
          return r;
        }
        if (request.deadline != std::chrono::steady_clock::time_point::max() &&
            std::chrono::steady_clock::now() >= request.deadline) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ShardResponse r = canned;
      r.truncated = true;
      r.cancel_cause = CancelCause::kDeadline;
      return r;
    }
    const int64_t delay_ms = eval_delay_ms.load(std::memory_order_acquire);
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    return canned;
  }

  std::atomic<uint64_t> evaluations{0};
  std::atomic<bool> started{false};
};

ShardRequest TestRequest() {
  ShardRequest request;
  request.query.keywords = {"tree", "indx"};
  request.expected_generation = 41;
  request.queue_depth = 2;
  request.queue_capacity = 8;
  return request;
}

// ---------------------------------------------------------------------------
// Framing layer.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripAllTypes) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 7, "hello", stream);
  EncodeFrame(FrameType::kResponse, 8, std::string(1000, 'x'), stream);
  EncodeFrame(FrameType::kCancel, 9, "", stream);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());

  DecodeEvent e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.type, FrameType::kRequest);
  EXPECT_EQ(e.frame.request_id, 7u);
  EXPECT_EQ(e.frame.payload, "hello");

  e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.type, FrameType::kResponse);
  EXPECT_EQ(e.frame.request_id, 8u);
  EXPECT_EQ(e.frame.payload.size(), 1000u);

  e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.type, FrameType::kCancel);
  EXPECT_EQ(e.frame.request_id, 9u);
  EXPECT_TRUE(e.frame.payload.empty());

  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, ByteAtATimeFeeding) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 42, "incremental payload", stream);

  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    decoder.Feed(&stream[i], 1);
    EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kNeedMore)
        << "byte " << i;
  }
  decoder.Feed(&stream[stream.size() - 1], 1);
  DecodeEvent e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.request_id, 42u);
  EXPECT_EQ(e.frame.payload, "incremental payload");
}

TEST(FrameTest, PayloadBitflipIsCorruptFrameAndStreamSurvives) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 77, "precious bytes", stream);
  stream[kFrameHeaderSize + 3] ^= 0x10;  // flip a payload bit
  EncodeFrame(FrameType::kRequest, 78, "healthy frame", stream);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());

  DecodeEvent e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kCorruptFrame);
  EXPECT_EQ(e.frame.request_id, 77u);  // best-effort header values survive
  EXPECT_EQ(e.status.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(decoder.fatal());

  // The stream stayed framed: the next frame decodes normally.
  e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.request_id, 78u);
  EXPECT_EQ(e.frame.payload, "healthy frame");
}

TEST(FrameTest, HeaderBitflipIsFatalAndSticky) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 5, "payload", stream);
  stream[10] ^= 0x01;  // inside the checksummed header region

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kFatal);
  EXPECT_TRUE(decoder.fatal());

  // Sticky: more bytes are discarded, the verdict never changes.
  std::string good;
  EncodeFrame(FrameType::kRequest, 6, "x", good);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kFatal);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, GarbagePrefixIsFatal) {
  FrameDecoder decoder;
  // A full header's worth of not-our-protocol bytes (the decoder judges
  // the magic once 32 bytes are buffered).
  std::string garbage = "GET /suggest HTTP/1.1\r\nHost: no\r\n\r\n";
  ASSERT_GE(garbage.size(), kFrameHeaderSize);
  decoder.Feed(garbage.data(), garbage.size());
  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kFatal);
}

/// Patches byte `offset` of the 24-byte checksummed header region and
/// recomputes the header checksum, producing a frame that is *internally
/// consistent* but violates a semantic header rule — the only way to reach
/// the version/length/type checks behind the checksum.
void PatchHeader(std::string& stream, size_t offset, uint8_t value) {
  stream[offset] = static_cast<char>(value);
  const uint64_t fnv = Fnv1a(stream.data(), 24);
  for (int i = 0; i < 8; ++i) {
    stream[24 + i] = static_cast<char>((fnv >> (8 * i)) & 0xFF);
  }
}

TEST(FrameTest, WrongVersionIsFatal) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 1, "payload", stream);
  PatchHeader(stream, 2, kProtocolVersion + 1);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  DecodeEvent e = decoder.Next();
  EXPECT_EQ(e.outcome, DecodeOutcome::kFatal);
  // An honest version mismatch is InvalidArgument (an old-version peer),
  // not DataLoss — the header checksum already proved the bytes intact.
  EXPECT_EQ(e.status.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedLengthIsFatalFromHeaderAlone) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 1, "p", stream);
  // Declare a 256 MiB payload (little-endian at offset 4), checksum fixed.
  stream[4] = 0;
  stream[5] = 0;
  stream[6] = 0;
  PatchHeader(stream, 7, 0x10);

  FrameDecoder decoder;
  // Feed ONLY the header: the length must be rejected before the decoder
  // waits for (or allocates) a quarter-gigabyte body.
  decoder.Feed(stream.data(), kFrameHeaderSize);
  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kFatal);
}

TEST(FrameTest, UnknownTypeIsCorruptFrameNotFatal) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 33, "payload", stream);
  PatchHeader(stream, 3, 9);  // no such FrameType
  EncodeFrame(FrameType::kCancel, 34, "", stream);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  DecodeEvent e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kCorruptFrame);
  EXPECT_EQ(e.frame.request_id, 33u);
  // Connection-worthy: the cancel frame behind it still decodes.
  e = decoder.Next();
  ASSERT_EQ(e.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(e.frame.type, FrameType::kCancel);
}

TEST(FrameTest, CustomPayloadCapApplies) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, 1, std::string(2048, 'a'), stream);
  FrameDecoder decoder(/*max_payload=*/1024);
  decoder.Feed(stream.data(), stream.size());
  EXPECT_EQ(decoder.Next().outcome, DecodeOutcome::kFatal);
}

// ---------------------------------------------------------------------------
// Wire serialization.
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTripReanchorsDeadline) {
  const auto now = std::chrono::steady_clock::now();
  ShardRequest request = TestRequest();
  request.deadline = now + std::chrono::milliseconds(250);

  std::string payload;
  EncodeShardRequest(request, now, payload);

  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(payload, now, &decoded).ok());
  EXPECT_EQ(decoded.query.keywords, request.query.keywords);
  EXPECT_EQ(decoded.queue_depth, request.queue_depth);
  EXPECT_EQ(decoded.queue_capacity, request.queue_capacity);
  EXPECT_EQ(decoded.expected_generation, request.expected_generation);
  EXPECT_EQ(decoded.external_cancel, nullptr);
  // Same anchor in and out: the relative budget reproduces the deadline
  // exactly (the wire carries whole nanoseconds).
  EXPECT_EQ(decoded.deadline, request.deadline);

  // A different decode anchor shifts the deadline by exactly the anchor
  // delta — the skew-immunity property.
  const auto later = now + std::chrono::milliseconds(40);
  ShardRequest shifted;
  ASSERT_TRUE(DecodeShardRequest(payload, later, &shifted).ok());
  EXPECT_EQ(shifted.deadline - later, request.deadline - now);
}

TEST(WireTest, NoDeadlineSentinelRoundTrips) {
  const auto now = std::chrono::steady_clock::now();
  ShardRequest request = TestRequest();  // deadline stays time_point::max()
  std::string payload;
  EncodeShardRequest(request, now, payload);
  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(payload, now, &decoded).ok());
  EXPECT_EQ(decoded.deadline, std::chrono::steady_clock::time_point::max());
}

TEST(WireTest, ExpiredDeadlineStaysExpired) {
  const auto now = std::chrono::steady_clock::now();
  ShardRequest request = TestRequest();
  request.deadline = now - std::chrono::seconds(3);  // long dead
  std::string payload;
  EncodeShardRequest(request, now, payload);
  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(payload, now, &decoded).ok());
  // Clamped to a zero budget, not resurrected and not underflowed.
  EXPECT_LE(decoded.deadline, now);
  EXPECT_GE(decoded.deadline, now - std::chrono::seconds(1));
}

TEST(WireTest, ResponseRoundTripsBitExactly) {
  const ShardResponse response = CannedResponse();
  std::string payload;
  EncodeShardResponse(response, payload);
  ShardResponse decoded;
  ASSERT_TRUE(DecodeShardResponse(payload, &decoded).ok());
  ExpectBitExact(decoded, response, "wire round-trip");
}

TEST(WireTest, ErrorStatusRoundTrips) {
  ShardResponse response;
  response.status = Status::Unavailable("ladder shed: kShed");
  response.shard_id = 9;
  std::string payload;
  EncodeShardResponse(response, payload);
  ShardResponse decoded;
  ASSERT_TRUE(DecodeShardResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.status.message(), "ladder shed: kShed");
  EXPECT_EQ(decoded.shard_id, 9u);
}

/// Every strict prefix of a valid payload must fail decode cleanly:
/// truncation can tear the payload at any byte and none of the tears may
/// crash, over-read, or decode to a different response.
TEST(WireTest, EveryResponsePrefixRejectedCleanly) {
  std::string payload;
  EncodeShardResponse(CannedResponse(), payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    ShardResponse decoded;
    const Status status =
        DecodeShardResponse(payload.substr(0, len), &decoded);
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "prefix " << len;
  }
}

TEST(WireTest, EveryRequestPrefixRejectedCleanly) {
  const auto now = std::chrono::steady_clock::now();
  ShardRequest request = TestRequest();
  request.deadline = now + std::chrono::milliseconds(100);
  std::string payload;
  EncodeShardRequest(request, now, payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    ShardRequest decoded;
    EXPECT_FALSE(
        DecodeShardRequest(payload.substr(0, len), now, &decoded).ok())
        << "prefix length " << len;
  }
}

TEST(WireTest, TrailingBytesRejected) {
  const auto now = std::chrono::steady_clock::now();
  std::string req_payload;
  EncodeShardRequest(TestRequest(), now, req_payload);
  req_payload.push_back('\0');
  ShardRequest request;
  EXPECT_FALSE(DecodeShardRequest(req_payload, now, &request).ok());

  std::string resp_payload;
  EncodeShardResponse(CannedResponse(), resp_payload);
  resp_payload.push_back('x');
  ShardResponse response;
  EXPECT_FALSE(DecodeShardResponse(resp_payload, &response).ok());
}

TEST(WireTest, RequestLimitsEnforced) {
  const auto now = std::chrono::steady_clock::now();
  ShardRequest huge;
  for (int i = 0; i < 65; ++i) huge.query.keywords.push_back("kw");
  std::string payload;
  EncodeShardRequest(huge, now, payload);
  ShardRequest decoded;
  EXPECT_EQ(DecodeShardRequest(payload, now, &decoded).code(),
            StatusCode::kDataLoss);

  ShardRequest long_kw;
  long_kw.query.keywords.push_back(std::string(2000, 'a'));
  payload.clear();
  EncodeShardRequest(long_kw, now, payload);
  EXPECT_EQ(DecodeShardRequest(payload, now, &decoded).code(),
            StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Client/server over loopback.
// ---------------------------------------------------------------------------

RpcClientOptions FastClientOptions() {
  RpcClientOptions options;
  options.connect_timeout = std::chrono::milliseconds(500);
  options.default_read_timeout = std::chrono::milliseconds(2000);
  options.max_dial_attempts = 2;
  options.dial_backoff.initial = std::chrono::milliseconds(5);
  options.dial_backoff.cap = std::chrono::milliseconds(20);
  return options;
}

/// Polls a condition with a real-time budget (server-side gauges settle
/// asynchronously after sockets close).
template <typename Predicate>
bool PollUntil(Predicate pred, std::chrono::milliseconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(RpcLoopbackTest, EvaluateReturnsBitExactResponse) {
  ScriptedBackend backend;
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  RpcShardBackend client(server.port(), 3, FastClientOptions());
  const ShardResponse response = client.Evaluate(TestRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ExpectBitExact(response, backend.canned, "loopback evaluate");

  EXPECT_EQ(client.stats().requests, 1u);
  EXPECT_EQ(client.stats().responses, 1u);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().responses_sent, 1u);
  EXPECT_EQ(backend.evaluations.load(), 1u);
}

TEST(RpcLoopbackTest, HealthyConnectionIsReused) {
  ScriptedBackend backend;
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  RpcShardBackend client(server.port(), 3, FastClientOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Evaluate(TestRequest()).status.ok()) << "call " << i;
  }
  EXPECT_EQ(client.stats().dials, 1u);
  EXPECT_EQ(client.stats().pooled_reuses, 4u);
  EXPECT_EQ(client.pooled_connections(), 1u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

TEST(RpcLoopbackTest, ConcurrentEvaluatesAllSucceed) {
  ScriptedBackend backend;
  RpcServerOptions sopts;
  sopts.max_connections = 16;
  sopts.eval_threads = 8;
  RpcShardServer server(&backend, sopts);
  ASSERT_TRUE(server.Start().ok());

  RpcShardBackend client(server.port(), 3, FastClientOptions());
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &backend, &failures] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const ShardResponse r = client.Evaluate(TestRequest());
        if (!r.status.ok() ||
            r.partials.size() != backend.canned.partials.size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client.stats().responses,
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(backend.evaluations.load(),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
}

TEST(RpcLoopbackTest, SlowBackendHitsClientDeadlineCleanly) {
  ScriptedBackend backend;
  backend.eval_delay_ms.store(400, std::memory_order_release);
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  RpcShardBackend client(server.port(), 3, FastClientOptions());
  ShardRequest request = TestRequest();
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  const auto t0 = std::chrono::steady_clock::now();
  const ShardResponse response = client.Evaluate(request);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_FALSE(response.status.ok());
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000)) << "hung leg";
  EXPECT_EQ(client.stats().timeouts, 1u);
  // The timed-out connection must not be reused for the next call.
  EXPECT_EQ(client.pooled_connections(), 0u);
  EXPECT_GE(client.stats().connections_evicted, 1u);

  // The client recovers on a fresh connection once the backend is quick.
  backend.eval_delay_ms.store(0, std::memory_order_release);
  ASSERT_TRUE(PollUntil(
      [&] { return client.Evaluate(TestRequest()).status.ok(); },
      std::chrono::milliseconds(3000)));
}

TEST(RpcLoopbackTest, ExternalCancelPropagatesAsCancelFrame) {
  ScriptedBackend backend;
  backend.wait_for_cancel = true;
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  RpcClientOptions copts = FastClientOptions();
  copts.cancel_linger = std::chrono::milliseconds(1000);
  RpcShardBackend client(server.port(), 3, copts);

  std::atomic<bool> cancel{false};
  ShardRequest request = TestRequest();
  request.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(4);
  request.external_cancel = &cancel;

  std::thread trigger([&backend, &cancel] {
    // Raise the kill switch once the evaluation is actually running.
    while (!backend.started.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true, std::memory_order_release);
  });

  const auto t0 = std::chrono::steady_clock::now();
  const ShardResponse response = client.Evaluate(request);
  trigger.join();

  // The server noticed the cancel frame, the backend returned its
  // truncated partial answer, and the stream delivered it — well before
  // the request's own 4 s deadline.
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.truncated);
  EXPECT_EQ(response.cancel_cause, CancelCause::kExternal);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(3));
  EXPECT_EQ(client.stats().cancels_sent, 1u);
  EXPECT_TRUE(PollUntil(
      [&] { return server.stats().cancels_applied >= 1; },
      std::chrono::milliseconds(1000)));
}

TEST(RpcLoopbackTest, CorruptPayloadFrameKeepsConnection) {
  ScriptedBackend backend;
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  Result<Socket> dialed =
      DialLoopback(server.port(), std::chrono::milliseconds(1000));
  ASSERT_TRUE(dialed.ok());
  Socket socket = std::move(dialed).value();

  const auto now = std::chrono::steady_clock::now();
  std::string request_payload;
  EncodeShardRequest(TestRequest(), now, request_payload);

  // Frame 1: valid. Frame 2: payload bit flipped (checksum fails, header
  // intact). Frame 3: valid. One connection, three answers expected.
  std::string stream;
  EncodeFrame(FrameType::kRequest, 1, request_payload, stream);
  const size_t corrupt_at = stream.size() + kFrameHeaderSize + 2;
  EncodeFrame(FrameType::kRequest, 2, request_payload, stream);
  stream[corrupt_at] ^= 0x40;
  EncodeFrame(FrameType::kRequest, 3, request_payload, stream);

  const auto deadline = now + std::chrono::seconds(5);
  ASSERT_TRUE(
      SendAll(socket, stream.data(), stream.size(), deadline, nullptr).ok());

  FrameDecoder decoder;
  std::vector<Frame> responses;
  char buf[4096];
  while (responses.size() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    Result<size_t> got =
        RecvSome(socket, buf, sizeof(buf), std::chrono::milliseconds(100));
    if (!got.ok()) continue;
    ASSERT_GT(got.value(), 0u) << "server closed a recoverable connection";
    decoder.Feed(buf, got.value());
    for (;;) {
      DecodeEvent e = decoder.Next();
      if (e.outcome != DecodeOutcome::kFrame) break;
      responses.push_back(std::move(e.frame));
    }
  }
  ASSERT_EQ(responses.size(), 3u);

  uint64_t ok_count = 0;
  uint64_t data_loss_count = 0;
  for (const Frame& frame : responses) {
    ShardResponse response;
    ASSERT_TRUE(DecodeShardResponse(frame.payload, &response).ok());
    if (response.status.ok()) {
      ++ok_count;
      ExpectBitExact(response, backend.canned, "in-stream survivor");
    } else if (response.status.code() == StatusCode::kDataLoss) {
      ++data_loss_count;
      EXPECT_EQ(frame.request_id, 2u);
    }
  }
  EXPECT_EQ(ok_count, 2u);
  EXPECT_EQ(data_loss_count, 1u);
  EXPECT_EQ(server.stats().corrupt_frames, 1u);
  EXPECT_EQ(server.stats().fatal_streams, 0u);
}

TEST(RpcLoopbackTest, FatalStreamClosesOnlyThatConnection) {
  ScriptedBackend backend;
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  // Healthy client first, so its pooled connection predates the attack.
  RpcShardBackend client(server.port(), 3, FastClientOptions());
  ASSERT_TRUE(client.Evaluate(TestRequest()).status.ok());

  Result<Socket> attacker =
      DialLoopback(server.port(), std::chrono::milliseconds(1000));
  ASSERT_TRUE(attacker.ok());
  const std::string junk(64, 'Z');
  ASSERT_TRUE(SendAll(attacker.value(), junk.data(), junk.size(),
                      std::chrono::steady_clock::now() +
                          std::chrono::seconds(2),
                      nullptr)
                  .ok());
  // The attacker's connection dies (EOF) ...
  char buf[16];
  ASSERT_TRUE(PollUntil(
      [&] {
        Result<size_t> got = RecvSome(attacker.value(), buf, sizeof(buf),
                                      std::chrono::milliseconds(50));
        return got.ok() && got.value() == 0;
      },
      std::chrono::milliseconds(3000)));
  EXPECT_GE(server.stats().fatal_streams, 1u);

  // ... while the healthy client's pooled connection still works.
  const ShardResponse response = client.Evaluate(TestRequest());
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(client.stats().dials, 1u) << "healthy connection was torn down";
}

TEST(RpcLoopbackTest, GracefulShutdownFlushesInflightResponse) {
  ScriptedBackend backend;
  backend.eval_delay_ms.store(200, std::memory_order_release);
  auto server = std::make_unique<RpcShardServer>(&backend);
  ASSERT_TRUE(server->Start().ok());

  RpcShardBackend client(server->port(), 3, FastClientOptions());
  ShardResponse response;
  std::thread call([&] { response = client.Evaluate(TestRequest()); });

  // Wait until the evaluation is genuinely in flight, then drain.
  ASSERT_TRUE(PollUntil(
      [&] { return backend.started.load(std::memory_order_acquire); },
      std::chrono::milliseconds(3000)));
  server->Shutdown();
  call.join();

  ASSERT_TRUE(response.status.ok())
      << "drain dropped an in-flight response: " << response.status.ToString();
  ExpectBitExact(response, backend.canned, "drained response");
  EXPECT_EQ(server->stats().connections_open, 0u);
}

TEST(RpcLoopbackTest, ClientReconnectsThroughServerRestart) {
  ScriptedBackend backend;
  auto server = std::make_unique<RpcShardServer>(&backend);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  RpcShardBackend client(port, 3, FastClientOptions());
  ASSERT_TRUE(client.Evaluate(TestRequest()).status.ok());
  ASSERT_EQ(client.pooled_connections(), 1u);

  server->Shutdown();
  server.reset();

  // Same port, new process-equivalent. The pooled connection is dead; the
  // client must notice (EOF on the stale socket) and redial.
  RpcServerOptions sopts;
  sopts.port = port;
  RpcShardServer reborn(&backend, sopts);
  ASSERT_TRUE(reborn.Start().ok());

  const ShardResponse response = client.Evaluate(TestRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ExpectBitExact(response, backend.canned, "post-restart response");
  EXPECT_GE(client.stats().connections_evicted, 1u);
  EXPECT_GE(client.stats().dials, 2u);
}

// ---------------------------------------------------------------------------
// The seeded byte-fault schedule sweep.
// ---------------------------------------------------------------------------

/// One schedule: a fresh client speaks to the long-lived server through a
/// fresh FaultProxy carrying a seeded script. The invariants checked per
/// schedule are the PR's acceptance bar.
struct SweepCounters {
  uint64_t clean_ok = 0;
  uint64_t data_loss = 0;
  uint64_t unavailable = 0;
  uint64_t deadline = 0;
};

TEST(RpcFaultSweepTest, MangledStreamsNeverCorruptHangOrLeak) {
  const uint64_t base = RpcBaseSeed();
  const size_t schedules = ScheduleCount();

  ScriptedBackend backend;
  RpcServerOptions sopts;
  sopts.max_connections = 8;
  sopts.eval_threads = 2;
  sopts.idle_timeout = std::chrono::milliseconds(2000);
  sopts.write_timeout = std::chrono::milliseconds(2000);
  RpcShardServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  // Measure the honest wire sizes once, so fault offsets land where the
  // bytes actually are (plus a margin that leaves some schedules clean).
  std::string request_payload;
  EncodeShardRequest(TestRequest(), std::chrono::steady_clock::now(),
                     request_payload);
  std::string request_stream;
  EncodeFrame(FrameType::kRequest, 1, request_payload, request_stream);
  std::string response_payload;
  EncodeShardResponse(backend.canned, response_payload);
  std::string response_stream;
  EncodeFrame(FrameType::kResponse, 1, response_payload, response_stream);

  SweepCounters counters;
  for (size_t k = 0; k < schedules; ++k) {
    const uint64_t schedule_seed = base + 0xC0FFEEull + k;
    Rng rng(schedule_seed * 0x9E3779B97F4A7C15ull + 11);

    FaultScript script;
    script.kind = static_cast<MangleKind>(1 + rng.Uniform(6));
    script.server_to_client = rng.Bernoulli(0.5);
    const size_t dir_len = script.server_to_client ? response_stream.size()
                                                   : request_stream.size();
    script.byte_offset = rng.Uniform(dir_len + 32);
    script.bit = static_cast<uint32_t>(rng.Uniform(8));
    script.garbage_len = static_cast<uint32_t>(1 + rng.Uniform(64));
    script.seed = schedule_seed;
    const std::string context = "schedule " + std::to_string(k) + " seed " +
                                std::to_string(schedule_seed) + " " +
                                script.ToString();
    SCOPED_TRACE(context);

    FaultProxy proxy(server.port());
    ASSERT_TRUE(proxy.Start().ok());
    proxy.SetScript(script);

    {
      RpcClientOptions copts = FastClientOptions();
      copts.connect_timeout = std::chrono::milliseconds(300);
      copts.max_dial_attempts = 2;
      RpcShardBackend client(proxy.port(), 3, copts);

      ShardRequest request = TestRequest();
      request.deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
      const auto t0 = std::chrono::steady_clock::now();
      const ShardResponse response = client.Evaluate(request);
      const auto elapsed = std::chrono::steady_clock::now() - t0;

      // No hung legs: every outcome arrives within the deadline plus
      // bounded transport slack, fault or no fault.
      EXPECT_LT(elapsed, std::chrono::milliseconds(2500)) << "hung leg";

      if (response.status.ok()) {
        // The one way a mangled stream may still answer ok: the bytes
        // that reached the application were the true bytes. Bit-exact or
        // it counts as corrupt-accepted.
        ExpectBitExact(response, backend.canned, context);
        ++counters.clean_ok;
      } else {
        switch (response.status.code()) {
          case StatusCode::kDataLoss:
            ++counters.data_loss;
            break;
          case StatusCode::kUnavailable:
            ++counters.unavailable;
            break;
          case StatusCode::kDeadlineExceeded:
            ++counters.deadline;
            break;
          default:
            ADD_FAILURE() << context << ": unexpected error class "
                          << response.status.ToString();
        }
      }
    }
    proxy.Shutdown();

    // No leaked connections: with the proxy gone and the client destroyed,
    // the server's gauge must return to zero (its readers see EOF).
    EXPECT_TRUE(PollUntil(
        [&] { return server.stats().connections_open == 0; },
        std::chrono::milliseconds(4000)))
        << context << ": leaked connections, gauge="
        << server.stats().connections_open;
    if (::testing::Test::HasFatalFailure()) break;
  }

  // The server survived every schedule: a direct (unproxied) client still
  // gets a bit-exact answer.
  RpcShardBackend direct(server.port(), 3, FastClientOptions());
  const ShardResponse after = direct.Evaluate(TestRequest());
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  ExpectBitExact(after, backend.canned, "post-sweep direct evaluate");

  // The sweep must actually have exercised both regimes.
  EXPECT_GT(counters.clean_ok + counters.data_loss + counters.unavailable +
                counters.deadline,
            0u);
  std::printf(
      "rpc fault sweep: %zu schedules, base seed %llu — ok=%llu "
      "data_loss=%llu unavailable=%llu deadline=%llu\n",
      schedules, static_cast<unsigned long long>(base),
      static_cast<unsigned long long>(counters.clean_ok),
      static_cast<unsigned long long>(counters.data_loss),
      static_cast<unsigned long long>(counters.unavailable),
      static_cast<unsigned long long>(counters.deadline));
}

}  // namespace
}  // namespace xclean::rpc
