#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "xml/parser.h"

namespace xclean {
namespace {

std::unique_ptr<XmlIndex> BuildSample() {
  IndexOptions options;
  options.fastss_max_ed = 2;
  return XmlIndex::Build(
      std::move(ParseXmlString(
                    "<a><c><x>tree</x><x>trie icde</x></c>"
                    "<d><x>trie</x><x>icde icdt icde</x></d></a>")
                    .value()),
      options);
}

std::string SaveToString(const XmlIndex& index,
                         IndexSaveOptions options = IndexSaveOptions()) {
  std::ostringstream out;
  EXPECT_TRUE(SaveIndex(index, out, options).ok());
  return out.str();
}

std::unique_ptr<XmlIndex> LoadFromString(const std::string& bytes) {
  std::istringstream in(bytes);
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex(in);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(IndexIoTest, RoundTripPreservesStructureAndStats) {
  auto original = BuildSample();
  auto loaded = LoadFromString(SaveToString(*original));

  const XmlTree& t1 = original->tree();
  const XmlTree& t2 = loaded->tree();
  ASSERT_EQ(t1.size(), t2.size());
  for (NodeId n = 0; n < t1.size(); ++n) {
    EXPECT_EQ(t1.label(n), t2.label(n));
    EXPECT_EQ(t1.text(n), t2.text(n));
    EXPECT_EQ(t1.depth(n), t2.depth(n));
    EXPECT_EQ(t1.subtree_end(n), t2.subtree_end(n));
    EXPECT_EQ(t1.path_id(n), t2.path_id(n));
    EXPECT_EQ(t1.DeweyString(n), t2.DeweyString(n));
  }

  ASSERT_EQ(original->vocabulary().size(), loaded->vocabulary().size());
  for (TokenId tok = 0; tok < original->vocabulary().size(); ++tok) {
    EXPECT_EQ(original->vocabulary().token(tok),
              loaded->vocabulary().token(tok));
    EXPECT_EQ(original->collection_freq(tok), loaded->collection_freq(tok));
    EXPECT_EQ(original->doc_freq(tok), loaded->doc_freq(tok));
    const PostingList& l1 = original->postings(tok);
    const PostingList& l2 = loaded->postings(tok);
    ASSERT_EQ(l1.size(), l2.size());
    for (size_t i = 0; i < l1.size(); ++i) {
      EXPECT_EQ(l1[i].node, l2[i].node);
      EXPECT_EQ(l1[i].tf, l2[i].tf);
    }
    auto tl1 = original->type_index().list(tok);
    auto tl2 = loaded->type_index().list(tok);
    ASSERT_EQ(tl1.size(), tl2.size());
    for (size_t i = 0; i < tl1.size(); ++i) {
      EXPECT_EQ(tl1[i].path, tl2[i].path);
      EXPECT_EQ(tl1[i].freq, tl2[i].freq);
    }
  }
  EXPECT_EQ(original->total_tokens(), loaded->total_tokens());
  EXPECT_EQ(original->text_node_count(), loaded->text_node_count());
  for (NodeId n = 0; n < t1.size(); ++n) {
    EXPECT_EQ(original->node_token_count(n), loaded->node_token_count(n));
    EXPECT_EQ(original->subtree_token_count(n),
              loaded->subtree_token_count(n));
  }
  EXPECT_EQ(original->options().fastss_max_ed,
            loaded->options().fastss_max_ed);
}

TEST(IndexIoTest, LoadedIndexGivesIdenticalSuggestions) {
  auto original = BuildSample();
  auto loaded = LoadFromString(SaveToString(*original));

  XCleanOptions options;
  options.max_ed = 1;
  options.gamma = 0;
  XClean a(*original, options);
  XClean b(*loaded, options);
  Query q;
  q.keywords = {"tree", "icdt"};
  auto sa = a.Suggest(q);
  auto sb = b.Suggest(q);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].words, sb[i].words);
    EXPECT_DOUBLE_EQ(sa[i].score, sb[i].score);
  }
}

TEST(IndexIoTest, RoundTripOnGeneratedCorpus) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  auto original = XmlIndex::Build(GenerateDblp(gen));
  std::string bytes = SaveToString(*original);
  auto loaded = LoadFromString(bytes);
  EXPECT_EQ(original->stats().node_count, loaded->stats().node_count);
  EXPECT_EQ(original->stats().vocabulary_size,
            loaded->stats().vocabulary_size);
  // FastSS works after load (its postings were persisted, not rebuilt).
  EXPECT_EQ(loaded->fastss().Find("algorithm", 1).size(),
            original->fastss().Find("algorithm", 1).size());
}

TEST(IndexIoTest, FileRoundTrip) {
  auto original = BuildSample();
  std::string path = testing::TempDir() + "/xclean_index_io_test.idx";
  ASSERT_TRUE(SaveIndex(*original, path).ok());
  Result<std::unique_ptr<XmlIndex>> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->total_tokens(), original->total_tokens());
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::istringstream in("NOTANINDEXFILE................");
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(IndexIoTest, RejectsWrongVersion) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  bytes[6] = 99;  // version byte
  std::istringstream in(bytes);
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(IndexIoTest, RejectsTruncation) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(LoadIndex(in).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoTest, RejectsBitFlips) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  // Flip a byte in the payload: checksum must catch it.
  size_t payload_start = 6 + 4 + 8;
  for (size_t offset : {payload_start, payload_start + 37,
                        bytes.size() - 9 - 1}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x5A);
    std::istringstream in(corrupted);
    EXPECT_FALSE(LoadIndex(in).ok()) << "flip at " << offset;
  }
}

TEST(IndexIoTest, MissingFile) {
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex("/no/such/file.idx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IndexIoTest, DefaultWriteIsLatestFormat) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  EXPECT_EQ(static_cast<uint32_t>(bytes[6]), kIndexFormatLatest);
}

TEST(IndexIoTest, RejectsUnknownWriteVersion) {
  auto original = BuildSample();
  std::ostringstream out;
  Status s = SaveIndex(*original, out, IndexSaveOptions{.format_version = 3});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// Old-version snapshots written by the legacy monolithic format must keep
// loading after the v2 switch.
TEST(IndexIoTest, V1FilesStillLoad) {
  auto original = BuildSample();
  std::string v1 = SaveToString(
      *original, IndexSaveOptions{.format_version = kIndexFormatV1});
  EXPECT_EQ(static_cast<uint32_t>(v1[6]), kIndexFormatV1);
  auto loaded = LoadFromString(v1);

  EXPECT_EQ(original->stats().node_count, loaded->stats().node_count);
  EXPECT_EQ(original->total_tokens(), loaded->total_tokens());

  XCleanOptions options;
  options.max_ed = 1;
  options.gamma = 0;
  XClean a(*original, options);
  XClean b(*loaded, options);
  Query q;
  q.keywords = {"tree", "icdt"};
  auto sa = a.Suggest(q);
  auto sb = b.Suggest(q);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].words, sb[i].words);
    EXPECT_DOUBLE_EQ(sa[i].score, sb[i].score);
  }
}

TEST(IndexIoTest, V1RejectsTruncationAndBitFlips) {
  auto original = BuildSample();
  std::string bytes = SaveToString(
      *original, IndexSaveOptions{.format_version = kIndexFormatV1});
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(LoadIndex(in).ok()) << "cut at " << cut;
  }
  size_t payload_start = 6 + 4 + 8;
  for (size_t offset :
       {payload_start, payload_start + 37, bytes.size() - 9 - 1}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x5A);
    std::istringstream in(corrupted);
    EXPECT_FALSE(LoadIndex(in).ok()) << "flip at " << offset;
  }
}

// The sectioned v2 layout reports *which* structure a corruption hit.
TEST(IndexIoTest, V2CorruptionNamesTheSection) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  // Flip a byte well inside the first (tree) section's payload: the
  // header is magic(6) + version(4) + tag(1) + size(8).
  size_t tree_payload_start = 6 + 4 + 1 + 8;
  std::string corrupted = bytes;
  corrupted[tree_payload_start + 5] ^= 0x5A;
  std::istringstream in(corrupted);
  Result<std::unique_ptr<XmlIndex>> r = LoadIndex(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("tree"), std::string::npos)
      << r.status().ToString();
}

// The tentpole's compression claim, asserted: delta + varint encoding must
// shrink a realistic snapshot by at least 30% versus the v1 raw structs.
TEST(IndexIoTest, V2IsAtLeast30PercentSmallerThanV1) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  std::string v1 =
      SaveToString(*index, IndexSaveOptions{.format_version = kIndexFormatV1});
  std::string v2 = SaveToString(*index);
  EXPECT_LE(v2.size(), (v1.size() * 7) / 10)
      << "v1=" << v1.size() << " bytes, v2=" << v2.size() << " bytes";
  // And the compressed form still round-trips losslessly.
  auto loaded = LoadFromString(v2);
  EXPECT_EQ(index->stats().node_count, loaded->stats().node_count);
  EXPECT_EQ(index->stats().vocabulary_size, loaded->stats().vocabulary_size);
  EXPECT_EQ(index->total_tokens(), loaded->total_tokens());
}

// Damaged files rejected through the path-based entry point — the one
// ServingEngine::SwapIndexFromFile depends on. A truncated copy (torn
// write) and a bit-flipped copy (disk corruption) must both come back
// non-OK, and the intact bytes must load again afterwards.
TEST(IndexIoTest, FileBasedTruncationAndCorruptionAreRejected) {
  auto original = BuildSample();
  std::string good = SaveToString(*original);
  std::string path = testing::TempDir() + "/xclean_index_io_damage.idx";
  auto write_file = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  write_file(good.substr(0, good.size() / 2));
  EXPECT_FALSE(LoadIndex(path).ok());

  std::string corrupted = good;
  corrupted[good.size() - 10] =
      static_cast<char>(corrupted[good.size() - 10] ^ 0x5A);
  write_file(corrupted);
  EXPECT_FALSE(LoadIndex(path).ok());

  write_file(good);
  EXPECT_TRUE(LoadIndex(path).ok());
  std::remove(path.c_str());
}

// A v2 load followed by a save must reproduce the exact input bytes (the
// loader rebuilds every structure the writer serializes).
TEST(IndexIoTest, V2LoadSaveIsByteStable) {
  auto original = BuildSample();
  std::string bytes = SaveToString(*original);
  auto loaded = LoadFromString(bytes);
  EXPECT_EQ(SaveToString(*loaded), bytes);
}

}  // namespace
}  // namespace xclean
