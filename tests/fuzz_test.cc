// Robustness sweeps: random and mutated inputs must never crash, and
// well-formed pipelines must maintain their invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>

#include "common/cancel.h"
#include "common/random.h"
#include "core/query.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "index/index_io.h"
#include "rpc/frame.h"
#include "rpc/wire.h"
#include "shard/shard_server.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xclean {
namespace {

/// Random byte soup: the parser must reject or accept without crashing,
/// and never accept something that then breaks the tree invariants.
TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF00D);
  const char alphabet[] = "<>/=\"' abcdet&;![]-?";
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<XmlTree> tree = ParseXmlString(input);
    if (tree.ok()) {
      // Whatever parsed must be internally consistent.
      const XmlTree& t = tree.value();
      for (NodeId n = 0; n < t.size(); ++n) {
        ASSERT_LE(t.subtree_end(n), t.size() - 1);
        ASSERT_GE(t.subtree_end(n), n);
        ASSERT_EQ(t.dewey(n).size(), t.depth(n));
      }
    }
  }
}

/// Mutations of a valid document: flip/delete/insert bytes.
TEST(ParserFuzzTest, MutatedDocumentsNeverCrash) {
  const std::string base =
      "<dblp><article key=\"a&amp;1\"><author>Jane</author>"
      "<title>trees &#65; <!-- c --> <![CDATA[raw]]></title></article>"
      "</dblp>";
  Rng rng(0xBEEF);
  for (int round = 0; round < 3000; ++round) {
    std::string mutated = base;
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    Result<XmlTree> tree = ParseXmlString(mutated);
    (void)tree;  // either outcome is fine; no crash is the assertion
  }
}

/// Round-trip property on random generated trees: Parse(Write(t)) == t.
TEST(ParserFuzzTest, GeneratedTreesRoundTrip) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    DblpGenOptions gen;
    gen.num_publications = 40;
    gen.seed = seed;
    XmlTree original = GenerateDblp(gen);
    Result<XmlTree> reparsed = ParseXmlString(WriteXml(original));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    ASSERT_EQ(original.size(), reparsed->size());
    for (NodeId n = 0; n < original.size(); ++n) {
      ASSERT_EQ(original.label(n), reparsed->label(n));
      ASSERT_EQ(original.text(n), reparsed->text(n));
      ASSERT_EQ(original.path_id(n), reparsed->path_id(n));
    }
  }
}

/// Index-file fuzz: random corruption of a saved index must never crash
/// the loader (checksum catches most; header mutations the rest).
TEST(IndexIoFuzzTest, CorruptedIndexFilesNeverCrash) {
  DblpGenOptions gen;
  gen.num_publications = 50;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  std::ostringstream out;
  ASSERT_TRUE(SaveIndex(*index, out).ok());
  std::string bytes = out.str();

  Rng rng(0xCAFE);
  for (int round = 0; round < 300; ++round) {
    std::string corrupted = bytes;
    size_t mutations = 1 + rng.Uniform(8);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] = static_cast<char>(rng.Uniform(256));
    }
    if (rng.Bernoulli(0.3)) {
      corrupted.resize(rng.Uniform(corrupted.size() + 1));
    }
    std::istringstream in(corrupted);
    Result<std::unique_ptr<XmlIndex>> loaded = LoadIndex(in);
    (void)loaded;  // no crash is the assertion
  }
}

/// Query fuzz against a real index: random garbage queries must never
/// crash any cleaner, and every returned suggestion must satisfy the
/// public invariants.
TEST(SuggestFuzzTest, RandomQueriesKeepInvariants) {
  DblpGenOptions gen;
  gen.num_publications = 400;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  Rng rng(0xD1CE);

  for (Semantics semantics :
       {Semantics::kNodeType, Semantics::kSlca, Semantics::kElca}) {
    XCleanOptions options;
    options.gamma = 50;
    options.semantics = semantics;
    XClean cleaner(*index, options);
    for (int round = 0; round < 120; ++round) {
      Query query;
      size_t words = rng.Uniform(4);
      for (size_t w = 0; w < words; ++w) {
        std::string word;
        size_t len = 1 + rng.Uniform(12);
        for (size_t i = 0; i < len; ++i) {
          word.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
        query.keywords.push_back(std::move(word));
      }
      std::vector<Suggestion> suggestions = cleaner.Suggest(query);
      ASSERT_LE(suggestions.size(), options.top_k);
      for (size_t i = 0; i < suggestions.size(); ++i) {
        ASSERT_GT(suggestions[i].entity_count, 0u);
        ASSERT_EQ(suggestions[i].words.size(), query.size());
        ASSERT_GE(suggestions[i].score, 0.0);
        if (i > 0) {
          ASSERT_LE(suggestions[i].score, suggestions[i - 1].score);
        }
      }
    }
  }
}

/// Batch-path fuzz: SuggestBatch through one shared scratch must agree with
/// independent per-query evaluation — the scratch's arenas and memo tables
/// must never let one query's state leak into the next.
TEST(SuggestFuzzTest, BatchMatchesIndividualSuggest) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  Rng rng(0xBA7C4);
  XCleanOptions options;
  options.gamma = 50;
  XClean cleaner(*index, options);

  for (int round = 0; round < 20; ++round) {
    std::vector<Query> batch;
    size_t n = 1 + rng.Uniform(8);
    for (size_t q = 0; q < n; ++q) {
      Query query;
      size_t words = rng.Uniform(3);
      for (size_t w = 0; w < words; ++w) {
        std::string word;
        size_t len = 1 + rng.Uniform(10);
        for (size_t i = 0; i < len; ++i) {
          word.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
        query.keywords.push_back(std::move(word));
      }
      batch.push_back(std::move(query));
    }

    QueryScratch scratch;
    std::vector<XCleanRunStats> stats;
    std::vector<std::vector<Suggestion>> got =
        cleaner.SuggestBatch(batch, &scratch, &stats);
    ASSERT_EQ(got.size(), batch.size());
    ASSERT_EQ(stats.size(), batch.size());
    for (size_t q = 0; q < batch.size(); ++q) {
      std::vector<Suggestion> solo = cleaner.SuggestWithStats(batch[q],
                                                              nullptr);
      ASSERT_EQ(got[q].size(), solo.size()) << "query " << q;
      for (size_t i = 0; i < solo.size(); ++i) {
        EXPECT_EQ(got[q][i].words, solo[i].words) << "query " << q;
        // Bit-identical scores: the scratch changes where state lives, not
        // one floating-point operation.
        EXPECT_EQ(got[q][i].score, solo[i].score) << "query " << q;
        EXPECT_EQ(got[q][i].entity_count, solo[i].entity_count);
        EXPECT_EQ(got[q][i].result_type, solo[i].result_type);
      }
    }
  }
}

/// Scratch-reuse fuzz: the same query pushed twice through one scratch must
/// come out bit-identical — warmed memo tables and recycled arenas may not
/// perturb a single floating-point operation.
TEST(SuggestFuzzTest, ScratchReuseIsBitIdentical) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  Rng rng(0x5C4A7);

  for (Semantics semantics :
       {Semantics::kNodeType, Semantics::kSlca, Semantics::kElca}) {
    XCleanOptions options;
    options.gamma = 50;
    options.semantics = semantics;
    XClean cleaner(*index, options);
    QueryScratch scratch;
    std::vector<Suggestion> first, second;
    for (int round = 0; round < 40; ++round) {
      Query query;
      size_t words = 1 + rng.Uniform(3);
      for (size_t w = 0; w < words; ++w) {
        std::string word;
        size_t len = 1 + rng.Uniform(10);
        for (size_t i = 0; i < len; ++i) {
          word.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
        query.keywords.push_back(std::move(word));
      }
      cleaner.SuggestWithScratch(query, scratch, &first, nullptr);
      cleaner.SuggestWithScratch(query, scratch, &second, nullptr);
      ASSERT_EQ(first.size(), second.size());
      for (size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i].words, second[i].words);
        ASSERT_EQ(first[i].score, second[i].score);
        ASSERT_EQ(first[i].error_weight, second[i].error_weight);
        ASSERT_EQ(first[i].entity_count, second[i].entity_count);
        ASSERT_EQ(first[i].result_type, second[i].result_type);
      }
    }
  }
}

/// Bounded-parse fuzz: arbitrary byte soup through ParseQueryBounded must
/// never crash, every rejection must be InvalidArgument, and every
/// accepted parse must agree with the unbounded parser and respect the
/// configured limits.
TEST(QueryFuzzTest, BoundedParseNeverCrashesAndEnforcesLimits) {
  DblpGenOptions gen;
  gen.num_publications = 50;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  const Tokenizer& tokenizer = index->tokenizer();
  QueryParseLimits limits;
  limits.max_bytes = 48;
  limits.max_keywords = 3;

  Rng rng(0xB0B5);
  const char alphabet[] = "abcdefgh   ZY.,!-<>&;0123456789\t\n";
  for (int round = 0; round < 4000; ++round) {
    std::string input;
    size_t len = rng.Uniform(96);  // half the rounds exceed max_bytes
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<Query> bounded = ParseQueryBounded(input, tokenizer, limits);
    if (input.size() > limits.max_bytes) {
      ASSERT_FALSE(bounded.ok());
      ASSERT_EQ(bounded.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    Query reference = ParseQuery(input, tokenizer);
    if (reference.size() > limits.max_keywords) {
      ASSERT_FALSE(bounded.ok());
      ASSERT_EQ(bounded.status().code(), StatusCode::kInvalidArgument);
    } else {
      ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
      ASSERT_EQ(bounded.value(), reference);
      ASSERT_LE(bounded.value().size(), limits.max_keywords);
    }
  }
}

/// Budget fuzz: random work budgets attached to random queries must never
/// crash, every result list must keep the public invariants, and a token
/// with an unlimited budget must be bit-identical to no token at all —
/// cancellation changes when the algorithm stops, never what it computes.
TEST(SuggestFuzzTest, RandomBudgetsKeepInvariants) {
  DblpGenOptions gen;
  gen.num_publications = 300;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  Rng rng(0xB4D6E7);

  for (Semantics semantics :
       {Semantics::kNodeType, Semantics::kSlca, Semantics::kElca}) {
    XCleanOptions options;
    options.gamma = 50;
    options.semantics = semantics;
    XClean cleaner(*index, options);
    QueryScratch scratch;
    for (int round = 0; round < 60; ++round) {
      Query query;
      size_t words = 1 + rng.Uniform(3);
      for (size_t w = 0; w < words; ++w) {
        std::string word;
        size_t len = 1 + rng.Uniform(10);
        for (size_t i = 0; i < len; ++i) {
          word.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
        query.keywords.push_back(std::move(word));
      }

      QueryBudget budget;
      budget.max_postings = rng.Uniform(2000);    // 0 = unlimited
      budget.max_candidates = rng.Uniform(50);    // 0 = unlimited
      CancelToken token(budget);
      std::vector<Suggestion> budgeted;
      XCleanRunStats stats;
      cleaner.SuggestWithScratch(query, scratch, &budgeted, &stats, &token);
      ASSERT_LE(budgeted.size(), options.top_k);
      for (size_t i = 0; i < budgeted.size(); ++i) {
        ASSERT_GT(budgeted[i].entity_count, 0u);
        ASSERT_EQ(budgeted[i].words.size(), query.size());
        if (i > 0) ASSERT_LE(budgeted[i].score, budgeted[i - 1].score);
      }
      if (!stats.truncated) {
        ASSERT_EQ(stats.cancel_cause, CancelCause::kNone);
      }

      // Unlimited budget == no budget, bit for bit.
      CancelToken unlimited;
      std::vector<Suggestion> with_token, without_token;
      cleaner.SuggestWithScratch(query, scratch, &with_token, nullptr,
                                 &unlimited);
      cleaner.SuggestWithScratch(query, scratch, &without_token, nullptr);
      ASSERT_EQ(with_token.size(), without_token.size());
      for (size_t i = 0; i < with_token.size(); ++i) {
        ASSERT_EQ(with_token[i].words, without_token[i].words);
        ASSERT_EQ(with_token[i].score, without_token[i].score);
        ASSERT_EQ(with_token[i].entity_count, without_token[i].entity_count);
      }
    }
  }
}

/// Random byte soup against the RPC frame decoder: whatever arrives, the
/// decoder must never crash, never over-read, and never buffer unbounded
/// garbage — random bytes almost surely fail the magic/header checks, so
/// the stream must go fatal with its buffer discarded.
TEST(RpcFrameFuzzTest, RandomBytesNeverCrashOrAccumulate) {
  Rng rng(0xFEEDFACE);
  for (int round = 0; round < 2000; ++round) {
    rpc::FrameDecoder decoder;
    const size_t len = rng.Uniform(200);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    // Feed in random chunk sizes: framing must be chunking-independent.
    size_t fed = 0;
    while (fed < input.size()) {
      const size_t chunk =
          std::min<size_t>(1 + rng.Uniform(64), input.size() - fed);
      decoder.Feed(input.data() + fed, chunk);
      fed += chunk;
      for (int step = 0; step < 8; ++step) {
        const rpc::DecodeEvent event = decoder.Next();
        if (event.outcome == rpc::DecodeOutcome::kNeedMore) break;
        if (event.outcome == rpc::DecodeOutcome::kFatal) {
          // Fatal is sticky and the buffer is dropped.
          ASSERT_EQ(decoder.buffered_bytes(), 0u);
          ASSERT_TRUE(decoder.fatal());
          break;
        }
      }
    }
    // Nothing a random stream produces may hold more than one frame cap.
    ASSERT_LE(decoder.buffered_bytes(),
              rpc::kDefaultMaxPayload + rpc::kFrameHeaderSize);
  }
}

/// Mutations of valid frames: flip bytes of a well-formed stream. Every
/// event must be one of the four clean outcomes; any frame surfaced as
/// kFrame must carry an intact payload checksum by construction.
TEST(RpcFrameFuzzTest, MutatedFramesDecodeCleanly) {
  Rng rng(0xDEC0DE);
  std::string base;
  rpc::EncodeFrame(rpc::FrameType::kRequest, 7, "first payload", base);
  rpc::EncodeFrame(rpc::FrameType::kResponse, 8,
                   std::string(300, 'r'), base);
  rpc::EncodeFrame(rpc::FrameType::kCancel, 9, "", base);

  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1u << rng.Uniform(8));
    }
    rpc::FrameDecoder decoder;
    decoder.Feed(mutated.data(), mutated.size());
    for (int step = 0; step < 16; ++step) {
      const rpc::DecodeEvent event = decoder.Next();
      if (event.outcome == rpc::DecodeOutcome::kNeedMore ||
          event.outcome == rpc::DecodeOutcome::kFatal) {
        break;
      }
      // kFrame and kCorruptFrame both consume the frame and keep going.
    }
  }
}

/// Random and mutated payloads against the wire decoders: DataLoss or a
/// fully-populated struct, never a crash and never an unbounded
/// allocation (the decode caps bound every length field).
TEST(RpcWireFuzzTest, RandomPayloadsNeverCrash) {
  Rng rng(0xBEEFCAFE);
  const auto now = std::chrono::steady_clock::now();
  for (int round = 0; round < 4000; ++round) {
    const size_t len = rng.Uniform(300);
    std::string payload;
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    shard::ShardRequest request;
    const Status rs = rpc::DecodeShardRequest(payload, now, &request);
    if (!rs.ok()) ASSERT_EQ(rs.code(), StatusCode::kDataLoss);
    shard::ShardResponse response;
    const Status ps = rpc::DecodeShardResponse(payload, &response);
    if (!ps.ok()) ASSERT_EQ(ps.code(), StatusCode::kDataLoss);
  }
}

TEST(RpcWireFuzzTest, MutatedResponsePayloadsNeverCrash) {
  Rng rng(0xFACADE);
  shard::ShardResponse canned;
  canned.status = Status::Ok();
  canned.shard_id = 2;
  canned.generation = 9;
  for (uint32_t i = 0; i < 4; ++i) {
    PartialCandidate p;
    p.tokens = {i, i + 1};
    p.error_weight = 0.25 * (i + 1);
    p.sum = 1.5 * i;
    p.entity_count = i;
    p.lca_total = i + 1;
    p.result_type = i;
    canned.partials.push_back(p);
  }
  std::string base;
  rpc::EncodeShardResponse(canned, base);

  for (int round = 0; round < 4000; ++round) {
    std::string mutated = base;
    const size_t edits = 1 + rng.Uniform(3);
    for (size_t e = 0; e < edits; ++e) {
      switch (rng.Uniform(3)) {
        case 0:  // flip
          mutated[rng.Uniform(mutated.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
          break;
        case 1:  // truncate
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        default:  // append garbage
          mutated.push_back(static_cast<char>(rng.Uniform(256)));
          break;
      }
      if (mutated.empty()) break;
    }
    shard::ShardResponse decoded;
    const Status status = rpc::DecodeShardResponse(mutated, &decoded);
    if (status.ok()) {
      // A mutation that still decodes must at least obey the caps.
      ASSERT_LE(decoded.partials.size(), size_t{1} << 20);
      for (const PartialCandidate& p : decoded.partials) {
        ASSERT_LE(p.tokens.size(), 64u);
      }
    } else {
      ASSERT_EQ(status.code(), StatusCode::kDataLoss);
    }
  }
}

}  // namespace
}  // namespace xclean
