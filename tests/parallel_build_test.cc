// Tests for the parallel index-construction pipeline: the ParallelFor
// primitive itself, and the tentpole guarantee that a parallel build is
// *byte-identical* to a serial one when serialized (any thread count, both
// snapshot formats). Registered under the `stress` ctest label so the
// ThreadSanitizer CI job exercises the parallel build paths.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "index/index_io.h"
#include "index/xml_index.h"
#include "xml/parser.h"

namespace xclean {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnceSerially) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(nullptr, hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnceOnPool) {
  ThreadPoolOptions po;
  po.num_threads = 3;
  ThreadPool pool(po);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(&pool, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, RespectsMinChunk) {
  ThreadPoolOptions po;
  po.num_threads = 3;
  ThreadPool pool(po);
  // n <= min_chunk must run as a single chunk on the calling thread.
  std::atomic<int> calls{0};
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> on_caller{true};
  ParallelFor(
      &pool, 50,
      [&](size_t begin, size_t end) {
        calls.fetch_add(1);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 50u);
        if (std::this_thread::get_id() != caller) on_caller = false;
      },
      ParallelForOptions{.min_chunk = 64});
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(on_caller.load());
}

std::string BuildAndSave(uint32_t num_publications, size_t threads,
                         uint32_t format_version) {
  DblpGenOptions gen;
  gen.num_publications = num_publications;
  IndexOptions options;
  options.build_threads = threads;
  auto index = XmlIndex::Build(GenerateDblp(gen), options);
  std::ostringstream out;
  EXPECT_TRUE(
      SaveIndex(*index, out, IndexSaveOptions{.format_version = format_version})
          .ok());
  return out.str();
}

// The acceptance criterion of the parallel build: for every thread count,
// the serialized snapshot is byte-for-byte the one the serial build writes.
TEST(ParallelBuildTest, AnyThreadCountSerializesIdenticalBytes) {
  const std::string serial = BuildAndSave(400, 1, kIndexFormatLatest);
  for (size_t threads : {size_t{2}, size_t{3}, size_t{8}}) {
    EXPECT_EQ(BuildAndSave(400, threads, kIndexFormatLatest), serial)
        << "threads=" << threads;
  }
}

TEST(ParallelBuildTest, HardwareConcurrencyAlsoMatches) {
  // build_threads = 0 resolves to std::thread::hardware_concurrency().
  EXPECT_EQ(BuildAndSave(150, 0, kIndexFormatLatest),
            BuildAndSave(150, 1, kIndexFormatLatest));
}

TEST(ParallelBuildTest, LegacyFormatIsAlsoDeterministic) {
  EXPECT_EQ(BuildAndSave(150, 8, kIndexFormatV1),
            BuildAndSave(150, 1, kIndexFormatV1));
}

TEST(ParallelBuildTest, ParallelBuildAnswersLikeSerialBuild) {
  DblpGenOptions gen;
  gen.num_publications = 200;
  IndexOptions serial_options;
  serial_options.build_threads = 1;
  IndexOptions parallel_options;
  parallel_options.build_threads = 8;
  auto serial = XmlIndex::Build(GenerateDblp(gen), serial_options);
  auto parallel = XmlIndex::Build(GenerateDblp(gen), parallel_options);

  XCleanOptions options;
  options.max_ed = 2;
  XClean a(*serial, options);
  XClean b(*parallel, options);
  Query q;
  q.keywords = {"algoritm", "tre"};
  auto sa = a.Suggest(q);
  auto sb = b.Suggest(q);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].words, sb[i].words);
    EXPECT_DOUBLE_EQ(sa[i].score, sb[i].score);
  }
}

TEST(ParallelBuildTest, EmptyishDocumentsSurviveAnyThreadCount) {
  // Degenerate inputs: fewer text nodes than threads, empty vocabulary.
  for (const char* xml :
       {"<a/>", "<a><b/><c/></a>", "<a><b>tree</b></a>"}) {
    IndexOptions serial_options;
    serial_options.build_threads = 1;
    IndexOptions parallel_options;
    parallel_options.build_threads = 8;
    auto t1 = ParseXmlString(xml);
    auto t2 = ParseXmlString(xml);
    ASSERT_TRUE(t1.ok() && t2.ok());
    auto serial = XmlIndex::Build(std::move(t1).value(), serial_options);
    auto parallel = XmlIndex::Build(std::move(t2).value(), parallel_options);
    std::ostringstream o1, o2;
    ASSERT_TRUE(SaveIndex(*serial, o1).ok());
    ASSERT_TRUE(SaveIndex(*parallel, o2).ok());
    EXPECT_EQ(o1.str(), o2.str()) << xml;
  }
}

}  // namespace
}  // namespace xclean
