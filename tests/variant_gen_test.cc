#include "core/variant_gen.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xclean {
namespace {

std::unique_ptr<XmlIndex> BuildSample() {
  return XmlIndex::Build(std::move(
      ParseXmlString("<a><x>tree trees trie icde icdt smith smyth</x></a>")
          .value()));
}

TEST(VariantGenTest, PaperExampleEpsilonOne) {
  auto index = BuildSample();
  VariantGenerator gen(*index, VariantGenOptions{1, false});
  std::vector<Variant> variants = gen.Generate("tree");
  std::vector<std::string> words;
  for (const Variant& v : variants) {
    words.push_back(index->vocabulary().token(v.token));
  }
  EXPECT_EQ(words, (std::vector<std::string>{"tree", "trees", "trie"}));
  EXPECT_EQ(variants[0].distance, 0u);
  EXPECT_EQ(variants[1].distance, 1u);
}

TEST(VariantGenTest, SortedByDistanceThenToken) {
  auto index = BuildSample();
  VariantGenerator gen(*index, VariantGenOptions{2, false});
  std::vector<Variant> variants = gen.Generate("tre");
  ASSERT_GE(variants.size(), 2u);
  for (size_t i = 1; i < variants.size(); ++i) {
    EXPECT_TRUE(variants[i - 1].distance < variants[i].distance ||
                (variants[i - 1].distance == variants[i].distance &&
                 variants[i - 1].token < variants[i].token));
  }
}

TEST(VariantGenTest, EmptyForHopelessKeyword) {
  auto index = BuildSample();
  VariantGenerator gen(*index, VariantGenOptions{1, false});
  EXPECT_TRUE(gen.Generate("zzzzzzzz").empty());
}

TEST(VariantGenTest, SoundexExtensionAddsPhoneticVariants) {
  auto index = BuildSample();
  VariantGenerator plain(*index, VariantGenOptions{1, false});
  VariantGenerator phonetic(*index, VariantGenOptions{1, true});
  // "smith" and "smyth" share a soundex code; ed = 1 anyway. Use a query
  // phonetically equal but editorially far: "smithe" (ed 1 to smith ok) —
  // take "smyteh"? Keep it simple: compare sizes on a phonetic neighbor.
  std::vector<Variant> p = plain.Generate("smythe");
  std::vector<Variant> s = phonetic.Generate("smythe");
  EXPECT_GE(s.size(), p.size());
  bool has_smith = false;
  for (const Variant& v : s) {
    if (index->vocabulary().token(v.token) == "smith") has_smith = true;
  }
  EXPECT_TRUE(has_smith);
}

TEST(VariantGenTest, SoundexVariantsGetMaxDistance) {
  auto index = BuildSample();
  VariantGenerator gen(*index, VariantGenOptions{1, true});
  for (const Variant& v : gen.Generate("smythe")) {
    const std::string& word = index->vocabulary().token(v.token);
    if (word == "smith") {
      // ed("smythe","smith") = 2 > eps: admitted via soundex at distance =
      // max_ed.
      EXPECT_EQ(v.distance, 1u);
    }
  }
}

}  // namespace
}  // namespace xclean
