#include "data/inex_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "data/dblp_gen.h"
#include "index/xml_index.h"

namespace xclean {
namespace {

InexGenOptions SmallOptions() {
  InexGenOptions o;
  o.num_articles = 120;
  o.vocabulary_target = 3000;
  o.seed = 23;
  return o;
}

TEST(InexGenTest, DeterministicInSeed) {
  XmlTree a = GenerateInex(SmallOptions());
  XmlTree b = GenerateInex(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (NodeId n = 0; n < a.size(); n += 53) {
    EXPECT_EQ(a.label(n), b.label(n));
    EXPECT_EQ(a.text(n), b.text(n));
  }
}

TEST(InexGenTest, StructureIsDocumentCentric) {
  XmlTree t = GenerateInex(SmallOptions());
  EXPECT_EQ(t.label(0), "articles");
  // Deep narrative nesting: sections inside sections.
  EXPECT_GE(t.max_depth(), 7u);
  EXPECT_GT(t.avg_depth(), 4.0);
  uint32_t articles = 0;
  for (NodeId c = t.FirstChild(t.root()); c != kInvalidNode;
       c = t.NextSibling(c)) {
    EXPECT_EQ(t.label(c), "article");
    ++articles;
  }
  EXPECT_EQ(articles, 120u);
  EXPECT_NE(t.FindPath("/articles/article/body/section/section"),
            XmlTree::kInvalidPath);
}

TEST(InexGenTest, VocabularyMuchLargerThanDblp) {
  DblpGenOptions dblp;
  dblp.num_publications = 500;
  auto dblp_index = XmlIndex::Build(GenerateDblp(dblp));
  auto inex_index = XmlIndex::Build(GenerateInex(SmallOptions()));
  // The paper's INEX vocabulary is ~6x DBLP's; ours must be clearly larger.
  EXPECT_GT(inex_index->stats().vocabulary_size,
            2 * dblp_index->stats().vocabulary_size);
}

TEST(InexGenTest, ArticlesAreTopicallyCoherent) {
  auto index = XmlIndex::Build(GenerateInex(SmallOptions()));
  const XmlTree& t = index->tree();
  // Within one article, some non-trivial token repeats several times
  // (topical reuse) — this is what makes entity language models peaky.
  NodeId article = t.FirstChild(t.root());
  ASSERT_NE(article, kInvalidNode);
  std::unordered_map<std::string, int> counts;
  for (NodeId n = article; n <= t.subtree_end(article); ++n) {
    if (!t.has_text(n)) continue;
    for (const std::string& tok : index->tokenizer().Tokenize(t.text(n))) {
      ++counts[tok];
    }
  }
  int max_count = 0;
  for (const auto& [tok, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GE(max_count, 4);
}

TEST(InexGenTest, RespectsSectionDepthCap) {
  InexGenOptions o = SmallOptions();
  o.max_section_depth = 2;
  o.subsection_probability = 1.0;
  XmlTree t = GenerateInex(o);
  // /articles/article/body/section/section is the deepest section chain;
  // its title/p children bottom out at depth 7.
  EXPECT_LE(t.max_depth(), 8u);
}

}  // namespace
}  // namespace xclean
