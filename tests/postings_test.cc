#include "index/postings.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace xclean {
namespace {

PostingList MakeList(std::vector<NodeId> nodes) {
  std::vector<Posting> postings;
  for (NodeId n : nodes) postings.push_back(Posting{n, 1});
  return PostingList(std::move(postings));
}

TEST(PostingCursorTest, SequentialIteration) {
  PostingList list = MakeList({1, 5, 9});
  PostingCursor cursor(list);
  ASSERT_FALSE(cursor.AtEnd());
  EXPECT_EQ(cursor.Get().node, 1u);
  cursor.Next();
  EXPECT_EQ(cursor.Get().node, 5u);
  cursor.Next();
  EXPECT_EQ(cursor.Get().node, 9u);
  cursor.Next();
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(PostingCursorTest, SkipToLandsOnFirstGeq) {
  PostingList list = MakeList({2, 4, 8, 16, 32});
  PostingCursor cursor(list);
  cursor.SkipTo(5);
  EXPECT_EQ(cursor.Get().node, 8u);
  cursor.SkipTo(8);  // no-op: already >= target
  EXPECT_EQ(cursor.Get().node, 8u);
  cursor.SkipTo(33);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(PostingCursorTest, SkipToPastEverything) {
  PostingList list = MakeList({1, 2});
  PostingCursor cursor(list);
  cursor.SkipTo(1000);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(PostingCursorTest, EmptyList) {
  PostingList list;
  PostingCursor cursor(list);
  EXPECT_TRUE(cursor.AtEnd());
  cursor.SkipTo(5);  // must not crash
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(PostingCursorTest, RemainingCounts) {
  PostingList list = MakeList({1, 2, 3});
  PostingCursor cursor(list);
  EXPECT_EQ(cursor.remaining(), 3u);
  cursor.Next();
  EXPECT_EQ(cursor.remaining(), 2u);
}

/// Property: SkipTo is equivalent to repeated Next until node >= target.
TEST(PostingCursorTest, SkipToMatchesLinearScan) {
  Rng rng(21);
  for (int round = 0; round < 100; ++round) {
    std::vector<NodeId> nodes;
    NodeId cur = 0;
    size_t n = 1 + rng.Uniform(200);
    for (size_t i = 0; i < n; ++i) {
      cur += 1 + static_cast<NodeId>(rng.Uniform(10));
      nodes.push_back(cur);
    }
    PostingList list = MakeList(nodes);
    for (int probe = 0; probe < 20; ++probe) {
      NodeId target = static_cast<NodeId>(rng.Uniform(cur + 10));
      PostingCursor skipper(list);
      // Random pre-advance so skips start mid-list too.
      size_t pre = rng.Uniform(n);
      for (size_t i = 0; i < pre && !skipper.AtEnd(); ++i) skipper.Next();
      PostingCursor scanner = skipper;
      skipper.SkipTo(target);
      while (!scanner.AtEnd() && scanner.Get().node < target) scanner.Next();
      ASSERT_EQ(skipper.AtEnd(), scanner.AtEnd());
      if (!skipper.AtEnd()) {
        ASSERT_EQ(skipper.Get().node, scanner.Get().node);
      }
    }
  }
}

}  // namespace
}  // namespace xclean
