#include "core/xclean.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.h"

namespace xclean {
namespace {

/// The worked corpus (shape of the paper's Fig. 2 walk-through):
///   nodes: 0=a 1=c 2=x("tree") 3=x("trie icde") 4=d 5=x("trie")
///          6=x("icde icdt icde")
std::unique_ptr<XmlIndex> BuildSample() {
  return XmlIndex::Build(std::move(
      ParseXmlString(
          "<a><c><x>tree</x><x>trie icde</x></c>"
          "<d><x>trie</x><x>icde icdt icde</x></d></a>")
          .value()));
}

XCleanOptions Opts() {
  XCleanOptions o;
  o.max_ed = 1;
  o.beta = 5.0;
  o.mu = 2000.0;
  o.reduction = 0.8;
  o.min_depth = 2;
  o.gamma = 0;  // exact
  return o;
}

Query Q(std::vector<std::string> words) {
  Query q;
  q.keywords = std::move(words);
  return q;
}

/// Full hand-computed reproduction of the paper's Example 4/5 flow on the
/// sample tree with query "tree icdt" (eps = 1):
///  - candidate (tree, icdt) shares only the root type -> pruned by d = 2,
///  - (tree, icde): best type /a/c, entity c:
///      P = e^{-5} * [(1+2000/7)/2003] * [(1+6000/7)/2003] / 1
///  - (trie, icdt): best type /a/d, entity d:
///      P = e^{-5} * [(1+4000/7)/2004] * [(1+2000/7)/2004] / 1
///  - (trie, icde): type tie (/a/c vs /a/d) broken to /a/c; only the c
///      entity scores; error weight e^{-10}.
TEST(XCleanTest, WorkedExampleScores) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));

  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"tree", "icde"}));
  EXPECT_EQ(s[1].words, (std::vector<std::string>{"trie", "icdt"}));
  EXPECT_EQ(s[2].words, (std::vector<std::string>{"trie", "icde"}));

  const double e5 = std::exp(-5.0);
  double p_tree_c = (1.0 + 2000.0 / 7.0) / 2003.0;
  double p_icde_c = (1.0 + 6000.0 / 7.0) / 2003.0;
  double p_trie_d = (1.0 + 4000.0 / 7.0) / 2004.0;
  double p_icdt_d = (1.0 + 2000.0 / 7.0) / 2004.0;
  double p_trie_c = (1.0 + 4000.0 / 7.0) / 2003.0;

  EXPECT_NEAR(s[0].score, e5 * p_tree_c * p_icde_c, 1e-12);
  EXPECT_NEAR(s[1].score, e5 * p_trie_d * p_icdt_d, 1e-12);
  EXPECT_NEAR(s[2].score, e5 * e5 * p_trie_c * p_icde_c, 1e-15);

  EXPECT_EQ(s[0].result_type, index->tree().FindPath("/a/c"));
  EXPECT_EQ(s[1].result_type, index->tree().FindPath("/a/d"));
  EXPECT_EQ(s[2].result_type, index->tree().FindPath("/a/c"));
  for (const Suggestion& sg : s) EXPECT_EQ(sg.entity_count, 1u);

  // Input query itself has no connected result: correctly not suggested.
  for (const Suggestion& sg : s) {
    EXPECT_NE(sg.words, (std::vector<std::string>{"tree", "icdt"}));
  }
}

TEST(XCleanTest, TraversalStats) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  cleaner.Suggest(Q({"tree", "icdt"}));
  const XCleanRunStats& stats = cleaner.last_run_stats();
  EXPECT_EQ(stats.subtrees_processed, 2u);  // the c and d subtrees
  // 4 distinct candidates enumerated ((tree|trie, icde) in c;
  // (trie, icde|icdt) in d).
  EXPECT_EQ(stats.candidates_enumerated, 4u);
  EXPECT_EQ(stats.result_type_computations, 3u);  // (trie,icde) cached
  EXPECT_EQ(stats.entities_scored, 3u);
  EXPECT_EQ(stats.accumulator_evictions, 0u);
  EXPECT_EQ(stats.accumulators_final, 3u);
}

TEST(XCleanTest, CleanQueryRanksFirst) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  std::vector<Suggestion> s = cleaner.Suggest(Q({"trie", "icde"}));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"trie", "icde"}));
  EXPECT_DOUBLE_EQ(s[0].error_weight, 1.0);
}

TEST(XCleanTest, SingleKeywordQuery) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  std::vector<Suggestion> s = cleaner.Suggest(Q({"icdt"}));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"icdt"}));
  EXPECT_EQ(s[1].words, (std::vector<std::string>{"icde"}));
  EXPECT_NEAR(s[0].score, (1.0 + 2000.0 / 7.0) / 2004.0, 1e-12);
}

TEST(XCleanTest, MinDepthThreePrunesShallowEntities) {
  auto index = BuildSample();
  XCleanOptions o = Opts();
  o.min_depth = 3;
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));
  // Only (trie, icde) has a depth-3 entity (the x node "trie icde")
  // containing both keywords.
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"trie", "icde"}));
  EXPECT_EQ(s[0].result_type, index->tree().FindPath("/a/c/x"));
}

TEST(XCleanTest, EmptyAndHopelessQueries) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  EXPECT_TRUE(cleaner.Suggest(Q({})).empty());
  EXPECT_TRUE(cleaner.Suggest(Q({"qqqqqq"})).empty());
  EXPECT_TRUE(cleaner.Suggest(Q({"tree", "qqqqqq"})).empty());
}

TEST(XCleanTest, Deterministic) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  auto s1 = cleaner.Suggest(Q({"tree", "icdt"}));
  auto s2 = cleaner.Suggest(Q({"tree", "icdt"}));
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].words, s2[i].words);
    EXPECT_DOUBLE_EQ(s1[i].score, s2[i].score);
  }
}

TEST(XCleanTest, GammaBoundsAccumulators) {
  auto index = BuildSample();
  XCleanOptions o = Opts();
  o.gamma = 1;
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));
  EXPECT_LE(s.size(), 1u);
  EXPECT_LE(cleaner.last_run_stats().accumulators_final, 1u);
  EXPECT_GT(cleaner.last_run_stats().accumulator_evictions, 0u);
}

TEST(XCleanTest, TopKTruncates) {
  auto index = BuildSample();
  XCleanOptions o = Opts();
  o.top_k = 2;
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"tree", "icde"}));
}

TEST(XCleanTest, RepeatedKeywordsSupported) {
  auto index = BuildSample();
  XClean cleaner(*index, Opts());
  std::vector<Suggestion> s = cleaner.Suggest(Q({"icde", "icde"}));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"icde", "icde"}));
}

TEST(XCleanTest, NonUniformPriorReweightsEntities) {
  auto index = BuildSample();
  const XmlTree& tree = index->tree();
  XCleanOptions o = Opts();
  // Prior that loves the d entity and zeroes everything else: only
  // candidates answered inside d survive with mass.
  NodeId d_node = tree.FindByDewey(DeweyFromString("1.2"));
  o.entity_prior = [d_node](NodeId e) { return e == d_node ? 1.0 : 0.0; };
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0].words, (std::vector<std::string>{"trie", "icdt"}));
  // (tree, icde) was only answerable in c: prior zeroes its score.
  for (const Suggestion& sg : s) {
    if (sg.words == std::vector<std::string>{"tree", "icde"}) {
      EXPECT_DOUBLE_EQ(sg.score, 0.0);
    }
  }
}

TEST(XCleanSlcaTest, SlcaEntitiesScoreCandidates) {
  auto index = BuildSample();
  XCleanOptions o = Opts();
  o.semantics = Semantics::kSlca;
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"tree", "icdt"}));
  // (tree, icde): SLCA of {2} and {3} is c (node 1). (trie, icdt): SLCA of
  // {3,5} and {6} is d. (trie, icde): SLCA of {3,5} x {3,6} = {3, d}.
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(cleaner.name(), "XClean-SLCA");
  for (const Suggestion& sg : s) {
    EXPECT_GT(sg.entity_count, 0u);
    EXPECT_EQ(sg.result_type, XmlTree::kInvalidPath);
  }
  // The deep exact match (trie, icde) at node 3 benefits from a tiny |D|:
  // its top SLCA entity probability dwarfs the others, but its error
  // weight e^{-10} still decides. Just assert score ordering is strict and
  // deterministic.
  EXPECT_GE(s[0].score, s[1].score);
  EXPECT_GE(s[1].score, s[2].score);
}

TEST(XCleanSlcaTest, SlcaCountsEntitiesPerCandidate) {
  auto index = BuildSample();
  XCleanOptions o = Opts();
  o.semantics = Semantics::kSlca;
  XClean cleaner(*index, o);
  std::vector<Suggestion> s = cleaner.Suggest(Q({"trie", "icde"}));
  // Clean candidate (trie, icde): witnesses {3,5} and {3,6}; SLCAs: node 3
  // (self-contained) and node 4 (d, from 5+6). Two entities.
  for (const Suggestion& sg : s) {
    if (sg.words == std::vector<std::string>{"trie", "icde"}) {
      EXPECT_EQ(sg.entity_count, 2u);
    }
  }
}

}  // namespace
}  // namespace xclean
