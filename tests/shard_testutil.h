#ifndef XCLEAN_TESTS_SHARD_TESTUTIL_H_
#define XCLEAN_TESTS_SHARD_TESTUTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/query.h"
#include "data/workload.h"
#include "index/xml_index.h"
#include "xml/tree.h"

namespace xclean::shardtest {

/// Base seed for every shard test and the simulation harness. A failing
/// seed printed by a CI run replays locally via
///   XCLEAN_SHARD_SEED=<seed> ctest -R shard_sim_test
inline uint64_t ShardBaseSeed() {
  const char* env = std::getenv("XCLEAN_SHARD_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 20110411ull;
}

/// Random corpora with confusable vocabulary and irregular structure (the
/// differential_test.cc generator, returning the tree so callers can both
/// shard it and index it whole). Deterministic in `seed`: calling twice
/// with the same seed yields structurally identical trees, which is how
/// the sharded and unsharded builds of one corpus are obtained.
inline XmlTree RandomCorpusTree(uint64_t seed) {
  static const char* kWords[] = {
      "tree",  "trees", "trie",   "tried", "three", "icde",  "icdt",
      "index", "night", "light",  "sight", "graph", "grape", "query",
      "quern", "table", "cable",  "fable", "joins", "coins", "merge",
      "serge", "parse", "sparse", "terse"};
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  XmlTreeBuilder b;
  EXPECT_TRUE(b.BeginElement("corpus").ok());
  uint64_t sections = 2 + rng.Uniform(4);
  for (uint64_t s = 0; s < sections; ++s) {
    EXPECT_TRUE(
        b.BeginElement(rng.Bernoulli(0.5) ? "journal" : "proceedings").ok());
    uint64_t records = 2 + rng.Uniform(6);
    for (uint64_t r = 0; r < records; ++r) {
      EXPECT_TRUE(b.BeginElement(rng.Bernoulli(0.7) ? "paper" : "book").ok());
      uint64_t fields = 1 + rng.Uniform(3);
      for (uint64_t f = 0; f < fields; ++f) {
        std::string text;
        uint64_t words = 1 + rng.Uniform(7);
        for (uint64_t w = 0; w < words; ++w) {
          if (!text.empty()) text += " ";
          text += kWords[rng.Uniform(std::size(kWords))];
          if (rng.Bernoulli(0.15)) {
            text += " ";
            text += text.substr(text.find_last_of(' ') + 1);
          }
        }
        EXPECT_TRUE(
            b.AddLeaf(rng.Bernoulli(0.5) ? "title" : "abstract", text).ok());
      }
      if (rng.Bernoulli(0.3)) {
        EXPECT_TRUE(b.BeginElement("citations").ok());
        EXPECT_TRUE(
            b.AddLeaf("cite", kWords[rng.Uniform(std::size(kWords))]).ok());
        EXPECT_TRUE(b.EndElement().ok());
      }
      EXPECT_TRUE(b.EndElement().ok());
    }
    EXPECT_TRUE(b.EndElement().ok());
  }
  EXPECT_TRUE(b.EndElement().ok());
  Result<XmlTree> tree = std::move(b).Finish();
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

/// Dirty queries sampled from the corpus itself and perturbed with the
/// workload generator's RAND/RULE channels — answerable ground truth with
/// realistic misspellings.
inline std::vector<Query> DirtyQueries(const XmlIndex& index, uint64_t seed) {
  WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.num_queries = 8;
  wopts.max_len = 3;
  wopts.min_keyword_cf = 1;
  Rng rng(seed);
  std::vector<Query> out;
  for (const Query& clean : SampleInitialQueries(index, wopts)) {
    out.push_back(clean);
    out.push_back(PerturbRand(clean, index, wopts, rng));
    out.push_back(PerturbRule(clean, index, wopts, rng));
  }
  return out;
}

/// Same-ranking assertion as the differential oracle: words, entity count
/// and result type exactly; scores within a relative tolerance (shard-
/// major merge order differs from the entity fold by ulps).
inline void ExpectSameSuggestions(const std::vector<Suggestion>& got,
                                  const std::vector<Suggestion>& want,
                                  double tolerance,
                                  const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].words, want[i].words) << context << " rank " << i;
    EXPECT_NEAR(got[i].score, want[i].score,
                tolerance * (1.0 + std::abs(want[i].score)))
        << context << " rank " << i;
    EXPECT_EQ(got[i].entity_count, want[i].entity_count)
        << context << " rank " << i;
    EXPECT_EQ(got[i].result_type, want[i].result_type)
        << context << " rank " << i;
  }
}

inline const char* SemanticsName(Semantics s) {
  switch (s) {
    case Semantics::kNodeType:
      return "NodeType";
    case Semantics::kSlca:
      return "Slca";
    default:
      return "Elca";
  }
}

}  // namespace xclean::shardtest

#endif  // XCLEAN_TESTS_SHARD_TESTUTIL_H_
